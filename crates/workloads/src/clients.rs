//! Service-client populations for the `getrandom()` service layer.
//!
//! The paper's RNG *benchmarks* ([`crate::RngBenchmark`]) model
//! random-hungry applications as instruction traces; these generators
//! model the complementary view — the kernel-side request stream that N
//! concurrent clients offer to the DR-STRaNGe service layer
//! (`strange_core::RngService`). Each preset builds a deterministic
//! client population at a named offered load, ready to drop into
//! `SystemConfig::service`.
//!
//! Offered-load arithmetic assumes the paper's 4 GHz CPU clock: a client
//! issuing `bytes`-byte requests every `gap` cycles offers
//! `bytes × 8 × 4e9 / gap` bits/s.

use strange_core::{ClientSpec, FairnessPolicy, QosClass, ServiceConfig};

use crate::synth::seed_for;

/// Assigns QoS classes to a client population, client *i* getting
/// `qos[i]` (clients beyond the slice keep their current class). Used to
/// turn a uniform population into a mixed-tenant one for fairness/QoS
/// studies.
///
/// # Panics
///
/// Panics when `qos` names more clients than the population has.
pub fn assign_qos(mut config: ServiceConfig, qos: &[QosClass]) -> ServiceConfig {
    assert!(
        qos.len() <= config.clients.len(),
        "{} QoS classes for {} clients",
        qos.len(),
        config.clients.len()
    );
    for (client, &q) in config.clients.iter_mut().zip(qos) {
        client.qos = q;
    }
    config
}

/// CPU clock in cycles per microsecond (4 GHz, paper Table 1).
const CPU_CYCLES_PER_US: u64 = 4_000;

/// Mean inter-arrival gap (CPU cycles per client) for a population of
/// `clients` clients to offer `mbps` Mb/s of `bytes`-byte requests in
/// aggregate.
///
/// # Examples
///
/// ```
/// use strange_workloads::gap_for_offered_mbps;
///
/// // 4 clients × 32-byte requests at 1024 Mb/s aggregate:
/// // each client offers 256 Mb/s = one 256-bit request per microsecond.
/// assert_eq!(gap_for_offered_mbps(4, 32, 1024), 4_000);
/// ```
///
/// # Panics
///
/// Panics when any argument is zero.
pub fn gap_for_offered_mbps(clients: usize, bytes: usize, mbps: u32) -> u64 {
    assert!(clients > 0 && bytes > 0 && mbps > 0, "arguments must be nonzero");
    let bits_per_request = bytes as u64 * 8;
    // gap = clients × bits/request × cycles-per-second / offered bits/sec.
    let gap = clients as u64 * bits_per_request * CPU_CYCLES_PER_US * 1_000_000
        / (mbps as u64 * 1_000_000);
    gap.max(1)
}

/// A Poisson open-loop population: `clients` independent clients whose
/// aggregate offered load is `mbps` Mb/s of `bytes`-byte requests, each
/// issuing `requests` requests. Seeds derive from `instance`, so equal
/// arguments give bit-identical arrival streams.
pub fn poisson_service(
    clients: usize,
    bytes: usize,
    mbps: u32,
    requests: u64,
    instance: u64,
) -> ServiceConfig {
    let gap = gap_for_offered_mbps(clients, bytes, mbps);
    ServiceConfig {
        clients: (0..clients)
            .map(|i| {
                // Hash instance and client index independently and
                // combine: a plain `instance ^ i` collides for adjacent
                // instances (instance 6 client 0 == instance 7 client 1),
                // silently correlating populations meant to be
                // independent.
                let seed = seed_for("service-poisson", instance)
                    .wrapping_add(seed_for("service-client", i as u64));
                ClientSpec::poisson(bytes, gap, requests, seed)
            })
            .collect(),
        ..ServiceConfig::default()
    }
}

/// A closed-loop population: `clients` clients, each with one request in
/// flight and `think` cycles between completion and the next call.
pub fn closed_loop_service(
    clients: usize,
    bytes: usize,
    think: u64,
    requests: u64,
) -> ServiceConfig {
    ServiceConfig {
        clients: (0..clients)
            .map(|_| ClientSpec::closed_loop(bytes, think, requests))
            .collect(),
        ..ServiceConfig::default()
    }
}

/// A bursty open-loop population: each client issues `burst` back-to-back
/// requests every `gap` cycles (the paper's `getrandom()`-for-key-material
/// shape). Client *i* uses `gap + i`, so the population's bursts drift
/// apart instead of phase-locking on the same cycles.
pub fn bursty_service(
    clients: usize,
    bytes: usize,
    burst: u32,
    gap: u64,
    requests: u64,
) -> ServiceConfig {
    ServiceConfig {
        clients: (0..clients)
            .map(|i| ClientSpec::bursty(bytes, burst, gap + i as u64, requests))
            .collect(),
        ..ServiceConfig::default()
    }
}

/// The contended mixed-QoS tenant scenario the fairness studies share
/// (`examples/concurrent_server.rs`, `tests/fairness.rs`, and the
/// `fairness` bench): clients 0–1 are **saturating High-priority
/// aggressors** — closed loops of 256-byte requests (32 words each,
/// exactly the RNG queue's capacity) with a 200-cycle think time, enough
/// sustained demand to keep D-RaNGe's four channels past their ~620 Mb/s
/// rate — and clients 2–3 are a Normal and a Low closed-loop tenant
/// issuing `requests` calls of `bytes` each. The aggressors are
/// self-throttled (one request in flight each), so the backlog stays
/// finite but the queue slots and buffer words are contended on every
/// cycle: under [`FairnessPolicy::Strict`] the Low tenant starves
/// outright, while `Aging` and `WeightedFair` bound its tail latency.
/// Fully deterministic — no seeds involved.
pub fn contended_qos_service(bytes: usize, requests: u64) -> ServiceConfig {
    let think = 2_000;
    ServiceConfig {
        clients: vec![
            ClientSpec::closed_loop(256, 200, 4 * requests).with_qos(QosClass::High),
            ClientSpec::closed_loop(256, 200, 4 * requests).with_qos(QosClass::High),
            ClientSpec::closed_loop(bytes, think, requests).with_qos(QosClass::Normal),
            ClientSpec::closed_loop(bytes, think, requests).with_qos(QosClass::Low),
        ],
        ..ServiceConfig::default()
    }
}

/// The contended scenario paired with the default [`FairnessPolicy::Aging`]
/// policy — drop the pair straight into
/// `SystemConfig::with_service(..).with_fairness(..)`.
pub fn aging_service(bytes: usize, requests: u64) -> (ServiceConfig, FairnessPolicy) {
    (contended_qos_service(bytes, requests), FairnessPolicy::aging())
}

/// The contended scenario paired with the default
/// [`FairnessPolicy::WeightedFair`] policy (deficit round robin over the
/// tenants' QoS weights).
pub fn wfq_service(bytes: usize, requests: u64) -> (ServiceConfig, FairnessPolicy) {
    (
        contended_qos_service(bytes, requests),
        FairnessPolicy::weighted_fair(),
    )
}

/// A **flash crowd**: `clients` tenants each releasing one burst of
/// `burst` back-to-back `bytes`-byte requests — the overload-protection
/// stress shape (5–10× the TRNG's sustained rate arriving at once).
/// Client *i*'s burst fires after `i × stagger` cycles, so the fronts
/// pile onto the queue in a deterministic ramp instead of one
/// simultaneous spike. Pair with one background [`QosClass::Low`]
/// closed-loop tenant (the victim whose tail the admission layer must
/// protect) via [`flash_crowd_with_victim`].
pub fn flash_crowd_service(clients: usize, bytes: usize, burst: u32, stagger: u64) -> ServiceConfig {
    ServiceConfig {
        clients: (0..clients)
            .map(|i| {
                // One burst per client as an explicit trace: `burst`
                // arrivals all at cycle `i × stagger`. (A Bursty client
                // fires its first burst at the open cycle regardless of
                // gap, which would collapse the ramp into one spike.)
                ClientSpec::trace_replay(bytes, vec![i as u64 * stagger; burst as usize])
            })
            .collect(),
        ..ServiceConfig::default()
    }
}

/// [`flash_crowd_service`] plus a Low-QoS closed-loop victim tenant
/// (client index `clients`, issuing `victim_requests` `bytes`-byte calls
/// with a `think`-cycle loop) whose p99 the overload studies track.
pub fn flash_crowd_with_victim(
    clients: usize,
    bytes: usize,
    burst: u32,
    stagger: u64,
    victim_requests: u64,
    think: u64,
) -> ServiceConfig {
    let mut cfg = flash_crowd_service(clients, bytes, burst, stagger);
    for c in cfg.clients.iter_mut() {
        c.qos = QosClass::High;
    }
    cfg.clients
        .push(ClientSpec::closed_loop(bytes, think, victim_requests).with_qos(QosClass::Low));
    cfg
}

/// A **slow-drain** tenant population: each client's requests are huge
/// (`words_per_request` 64-bit words — think key-material refills), so a
/// single arrival occupies the generation pipeline for many episodes
/// while the think time keeps the tenant permanently resident. The
/// shape that exposes episode-level unfairness: without per-episode
/// batch caps one slow-drain tenant monopolizes every demand episode.
pub fn slow_drain_service(
    clients: usize,
    words_per_request: usize,
    think: u64,
    requests: u64,
) -> ServiceConfig {
    assert!(words_per_request > 0, "empty requests");
    ServiceConfig {
        clients: (0..clients)
            .map(|_| ClientSpec::closed_loop(words_per_request * 8, think, requests))
            .collect(),
        ..ServiceConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_arithmetic_matches_offered_load() {
        // One client, 8-byte requests, 256 Mb/s: 64 bits per request,
        // 4e9 cycles/s → one request per 1000 cycles.
        assert_eq!(gap_for_offered_mbps(1, 8, 256), 1_000);
        // Doubling the clients doubles each client's gap.
        assert_eq!(gap_for_offered_mbps(2, 8, 256), 2_000);
        // Doubling the load halves the gap.
        assert_eq!(gap_for_offered_mbps(1, 8, 512), 500);
    }

    #[test]
    fn poisson_population_is_deterministic() {
        let a = poisson_service(4, 32, 1024, 100, 7);
        let b = poisson_service(4, 32, 1024, 100, 7);
        assert_eq!(a, b);
        assert_eq!(a.clients.len(), 4);
        // Distinct clients get distinct seeds.
        let c = poisson_service(4, 32, 1024, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn adjacent_instances_share_no_client_seeds() {
        // The natural sweep `instance = 0..N` must produce fully
        // independent populations: no (instance, client) seed may repeat.
        let mut seeds = std::collections::HashSet::new();
        for instance in 0..8u64 {
            for c in &poisson_service(4, 32, 1024, 10, instance).clients {
                if let strange_core::ArrivalProcess::Poisson { seed, .. } = c.arrival {
                    assert!(seeds.insert(seed), "seed collision at instance {instance}");
                } else {
                    panic!("poisson expected");
                }
            }
        }
    }

    #[test]
    fn closed_loop_population_shape() {
        let cfg = closed_loop_service(3, 16, 500, 50);
        assert_eq!(cfg.clients.len(), 3);
        for c in &cfg.clients {
            assert_eq!(c.bytes, 16);
            assert_eq!(c.requests, 50);
        }
    }

    #[test]
    fn bursty_population_staggers_gaps() {
        let cfg = bursty_service(3, 8, 8, 10_000, 64);
        let gaps: Vec<u64> = cfg
            .clients
            .iter()
            .map(|c| match c.arrival {
                strange_core::ArrivalProcess::Bursty { gap, .. } => gap,
                _ => panic!("bursty expected"),
            })
            .collect();
        assert_eq!(gaps, vec![10_000, 10_001, 10_002]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_load_rejected() {
        gap_for_offered_mbps(1, 8, 0);
    }

    #[test]
    fn contended_scenario_shape() {
        let cfg = contended_qos_service(64, 100);
        assert_eq!(cfg.clients.len(), 4);
        assert_eq!(cfg.clients[0].qos, QosClass::High, "saturating aggressor");
        assert_eq!(cfg.clients[1].qos, QosClass::High);
        assert_eq!(cfg.clients[2].qos, QosClass::Normal);
        assert_eq!(cfg.clients[3].qos, QosClass::Low);
        // The aggressors outlast the measured tenants.
        assert_eq!(cfg.clients[0].requests, 400);
        assert_eq!(cfg.clients[3].requests, 100);
        assert_eq!(contended_qos_service(64, 100), cfg, "deterministic");
        let (a_cfg, a_pol) = aging_service(64, 100);
        assert_eq!(a_cfg, cfg);
        assert!(matches!(a_pol, FairnessPolicy::Aging { .. }));
        let (w_cfg, w_pol) = wfq_service(64, 100);
        assert_eq!(w_cfg, cfg);
        assert!(matches!(w_pol, FairnessPolicy::WeightedFair { .. }));
    }

    #[test]
    fn flash_crowd_ramps_deterministically() {
        let cfg = flash_crowd_service(3, 32, 10, 5_000);
        assert_eq!(cfg.clients.len(), 3);
        for (i, c) in cfg.clients.iter().enumerate() {
            assert_eq!(c.requests, 10, "one burst per client");
            match &c.arrival {
                strange_core::ArrivalProcess::TraceReplay { schedule } => {
                    assert_eq!(schedule.len(), 10);
                    assert!(schedule.iter().all(|&at| at == i as u64 * 5_000));
                }
                _ => panic!("trace replay expected"),
            }
        }
        assert_eq!(flash_crowd_service(3, 32, 10, 5_000), cfg, "deterministic");
    }

    #[test]
    fn flash_crowd_victim_rides_behind_the_crowd() {
        let cfg = flash_crowd_with_victim(3, 32, 10, 5_000, 40, 2_000);
        assert_eq!(cfg.clients.len(), 4);
        for c in &cfg.clients[..3] {
            assert_eq!(c.qos, QosClass::High, "the crowd outranks the victim");
        }
        let victim = &cfg.clients[3];
        assert_eq!(victim.qos, QosClass::Low);
        assert_eq!(victim.requests, 40);
        assert_eq!(victim.bytes, 32);
    }

    #[test]
    fn slow_drain_requests_are_word_sized() {
        let cfg = slow_drain_service(2, 64, 1_000, 20);
        assert_eq!(cfg.clients.len(), 2);
        for c in &cfg.clients {
            assert_eq!(c.bytes, 64 * 8, "words_per_request × 8 bytes");
            assert_eq!(c.requests, 20);
        }
    }

    #[test]
    #[should_panic(expected = "empty requests")]
    fn slow_drain_rejects_empty_requests() {
        slow_drain_service(1, 0, 1_000, 20);
    }
}
