//! Fleet-scale session populations and per-shard seed derivation.
//!
//! The sharded server (`strange_server::fleet`) partitions one big
//! session population across N independent `System` shards; these
//! helpers build that population at 10⁴–10⁵ sessions and derive each
//! shard's RNG seed deterministically from `(fleet seed, shard index)`
//! — so a fleet run is a pure function of the fleet seed, invariant to
//! shard startup order and host scheduling.

use strange_core::{ClientSpec, ServiceConfig};

use crate::synth::seed_for;

/// Derives shard `shard`'s TRNG seed from the fleet seed via the
/// seeded-stream helper: two independent [`seed_for`] streams (one over
/// the fleet seed, one over the shard index) are combined, so distinct
/// shards draw uncorrelated entropy streams and the derivation depends
/// only on `(fleet_seed, shard)` — never on construction order.
///
/// # Examples
///
/// ```
/// use strange_workloads::fleet_shard_seed;
///
/// let seeds: Vec<u64> = (0..4).map(|s| fleet_shard_seed(2022, s)).collect();
/// // Distinct per shard, stable across calls.
/// assert_eq!(seeds[0], fleet_shard_seed(2022, 0));
/// assert!(seeds.windows(2).all(|w| w[0] != w[1]));
/// ```
pub fn fleet_shard_seed(fleet_seed: u64, shard: usize) -> u64 {
    seed_for("fleet-shard", fleet_seed)
        .wrapping_add(seed_for("fleet-shard-index", shard as u64))
}

/// A **fleet flash crowd**: `sessions` one-shot tenants, each issuing a
/// single `bytes`-byte request, arriving in a deterministic ramp —
/// session *i* fires at cycle `i × stagger`. This is the 10⁴–10⁵
/// session population the fleet benches partition across shards (each
/// session is one `ClientSpec`, so `strange_server::fleet`'s
/// `partition_sessions` can split the population and every shard
/// replays its induced subset bit-identically).
///
/// # Panics
///
/// Panics when `sessions` or `bytes` is zero.
pub fn fleet_flash_crowd(sessions: usize, bytes: usize, stagger: u64) -> Vec<ClientSpec> {
    assert!(sessions > 0, "empty fleet population");
    assert!(bytes > 0, "zero-byte requests");
    (0..sessions)
        .map(|i| ClientSpec::trace_replay(bytes, vec![i as u64 * stagger]))
        .collect()
}

/// Wraps a per-shard session subset into a batch-mode [`ServiceConfig`]
/// with arrival recording on — the shape the fleet determinism contract
/// runs: partition → per-shard configs → `run_shards` → record→replay.
pub fn fleet_shard_service(shard_sessions: Vec<ClientSpec>) -> ServiceConfig {
    ServiceConfig {
        clients: shard_sessions,
        record_arrivals: true,
        ..ServiceConfig::default()
    }
}

/// Number of sessions for fleet scenarios from `STRANGE_FLEET_SESSIONS`
/// (default 10 000, minimum 1) — the dial CI uses to scale the
/// flash-crowd population down on small hosts, mirroring
/// `STRANGE_CHAOS_SEEDS` / `STRANGE_SERVER_REQUESTS`.
pub fn fleet_session_count() -> usize {
    std::env::var("STRANGE_FLEET_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(10_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seeds_distinct_and_stable() {
        let a: Vec<u64> = (0..8).map(|s| fleet_shard_seed(7, s)).collect();
        let b: Vec<u64> = (0..8).map(|s| fleet_shard_seed(7, s)).collect();
        assert_eq!(a, b);
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert_ne!(a[i], a[j], "shards {i} and {j} share a seed");
            }
        }
        assert_ne!(fleet_shard_seed(7, 0), fleet_shard_seed(8, 0));
    }

    #[test]
    fn flash_crowd_ramp_is_deterministic() {
        let pop = fleet_flash_crowd(100, 8, 50);
        assert_eq!(pop.len(), 100);
        assert_eq!(pop, fleet_flash_crowd(100, 8, 50));
    }
}
