//! Workload infrastructure for the DR-STRaNGe reproduction: the 43-app
//! benchmark catalog, synthetic trace generation, the synthetic RNG
//! benchmarks, every multi-programmed mix the paper evaluates, and
//! service-client populations (closed-loop / Poisson / bursty arrival
//! processes) for the cycle-accurate `getrandom()` service layer.
//!
//! The paper's applications come from SPEC CPU2006, TPC, STREAM,
//! MediaBench, and YCSB via 200 M-instruction SimPoint traces; those traces
//! are not redistributable, so this crate generates *synthetic stand-ins*
//! calibrated per application (MPKI, row locality, write mix, footprint —
//! see [`AppSpec`] and DESIGN.md §2). Workload construction follows the
//! paper's Tables 2–3 exactly: 172 motivation pairs, 43 evaluation pairs,
//! four-core LLLS/LLHS/LHHS/HHHS groups, and 8/16-core L/M/H groups.
//!
//! # Examples
//!
//! Build the paper's dual-core evaluation workloads and instantiate the
//! trace generators for the first one:
//!
//! ```
//! use strange_workloads::eval_pairs;
//!
//! let workloads = eval_pairs(5120);
//! assert_eq!(workloads.len(), 43);
//! let traces = workloads[0].traces();
//! assert_eq!(traces.len(), 2); // one app + one RNG benchmark
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod arrivals;
mod clients;
mod fleet;
mod mix;
mod rng_app;
mod synth;

pub use apps::{
    all_apps, app_by_name, apps_in_class, figure_apps, low_intensity_apps, AppSpec, IntensityClass,
};
pub use arrivals::{
    emit_arrival_trace, parse_arrival_trace, trace_replay_service, ArrivalTraceError,
};
pub use mix::{
    eval_pairs, four_core_groups, motivation_pairs, multicore_class_groups, nonrng_class_groups,
    AppRef, Workload,
};
pub use fleet::{fleet_flash_crowd, fleet_session_count, fleet_shard_seed, fleet_shard_service};
pub use clients::{
    aging_service, assign_qos, bursty_service, closed_loop_service, contended_qos_service,
    flash_crowd_service, flash_crowd_with_victim, gap_for_offered_mbps, poisson_service,
    slow_drain_service, wfq_service,
};
pub use rng_app::{
    rng_gap_for_throughput, RngBenchmark, RNG_BURST_REQUESTS, RNG_THROUGHPUTS_MBPS,
    RNG_THROUGHPUT_HIGH_MBPS,
};
pub use synth::{seed_for, SyntheticTrace};
