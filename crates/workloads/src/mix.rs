//! Multi-programmed workload construction (paper Tables 2 and 3).
//!
//! * **Motivation study** (Figure 1): 172 two-core workloads — each of the
//!   43 applications paired with each of the four RNG intensities.
//! * **Two-core evaluation** (Figures 6, 9, 10, 11, 13, 15, 16): 43 pairs,
//!   each application with the 5120 Mb/s RNG benchmark (640 Mb/s for
//!   Section 8.8, 10 Gb/s for appendix A.1).
//! * **Four-core groups** (Figures 7a, 8a): LLLS / LLHS / LHHS / HHHS — 3
//!   applications drawn from the named intensity classes plus one RNG
//!   benchmark ("S"), 10 workloads per group.
//! * **Class groups** (Figures 7b, 8b, 12, 14): L/M/H groups of 4-, 8-,
//!   and 16-core workloads (one RNG benchmark plus same-class
//!   applications), 10 workloads per group.
//! * **Non-RNG multicore mixes** (Figure 18): the same class groups
//!   without the RNG benchmark, used for idle-period profiling.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use strange_cpu::TraceSource;

use crate::apps::{all_apps, apps_in_class, AppSpec, IntensityClass};
use crate::rng_app::RngBenchmark;
use crate::synth::SyntheticTrace;

/// One slot of a workload: a named catalog application or an RNG benchmark
/// with a required throughput in Mb/s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppRef {
    /// A catalog application by name.
    Named(&'static str),
    /// A synthetic RNG benchmark (`required throughput in Mb/s`).
    Rng(u32),
}

impl AppRef {
    /// Display label (application name or `rng<mbps>`).
    pub fn label(&self) -> String {
        match self {
            AppRef::Named(n) => (*n).to_string(),
            AppRef::Rng(mbps) => format!("rng{mbps}"),
        }
    }
}

/// A multi-programmed workload: an ordered list of applications, one per
/// core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable name (used in harness tables).
    pub name: String,
    /// One entry per core.
    pub apps: Vec<AppRef>,
}

impl Workload {
    /// Builds a two-application workload (non-RNG app + RNG benchmark),
    /// the paper's dual-core shape.
    pub fn pair(app: &AppSpec, mbps: u32) -> Self {
        Workload {
            name: format!("{}+rng{}", app.name, mbps),
            apps: vec![AppRef::Named(app.name), AppRef::Rng(mbps)],
        }
    }

    /// Number of cores this workload occupies.
    pub fn cores(&self) -> usize {
        self.apps.len()
    }

    /// Index of the RNG benchmark core, if present.
    pub fn rng_core(&self) -> Option<usize> {
        self.apps.iter().position(|a| matches!(a, AppRef::Rng(_)))
    }

    /// Indices of non-RNG cores.
    pub fn non_rng_cores(&self) -> Vec<usize> {
        (0..self.apps.len())
            .filter(|&i| !matches!(self.apps[i], AppRef::Rng(_)))
            .collect()
    }

    /// Instantiates the trace generators, one per core. Deterministic: the
    /// same workload always produces the same streams.
    ///
    /// # Panics
    ///
    /// Panics if a named application is not in the catalog (workloads are
    /// built from the catalog, so this indicates internal inconsistency).
    pub fn traces(&self) -> Vec<Box<dyn TraceSource + Send>> {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, a)| match a {
                AppRef::Named(name) => {
                    let spec = crate::apps::app_by_name(name)
                        .unwrap_or_else(|| panic!("unknown application {name}"));
                    Box::new(SyntheticTrace::new(spec, i as u64)) as Box<dyn TraceSource + Send>
                }
                AppRef::Rng(mbps) => {
                    Box::new(RngBenchmark::new(*mbps, i as u64)) as Box<dyn TraceSource + Send>
                }
            })
            .collect()
    }
}

/// The 172 motivation workloads (Figure 1 / Table 2): every application ×
/// every RNG intensity.
pub fn motivation_pairs() -> Vec<Workload> {
    let mut out = Vec::new();
    for mbps in crate::rng_app::RNG_THROUGHPUTS_MBPS {
        for app in all_apps() {
            out.push(Workload::pair(&app, mbps));
        }
    }
    out
}

/// The 43 two-core evaluation workloads at a given RNG intensity
/// (5120 Mb/s for the main results).
pub fn eval_pairs(mbps: u32) -> Vec<Workload> {
    all_apps().iter().map(|a| Workload::pair(a, mbps)).collect()
}

/// The four-core groups of Figures 7a/8a: LLLS, LLHS, LHHS, HHHS, each
/// with `per_group` workloads (the paper uses 10).
pub fn four_core_groups(per_group: usize, seed: u64) -> Vec<(String, Vec<Workload>)> {
    let shapes: [(&str, [IntensityClass; 3]); 4] = [
        (
            "LLLS",
            [IntensityClass::Low, IntensityClass::Low, IntensityClass::Low],
        ),
        (
            "LLHS",
            [IntensityClass::Low, IntensityClass::Low, IntensityClass::High],
        ),
        (
            "LHHS",
            [IntensityClass::Low, IntensityClass::High, IntensityClass::High],
        ),
        (
            "HHHS",
            [IntensityClass::High, IntensityClass::High, IntensityClass::High],
        ),
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    shapes
        .iter()
        .map(|(name, classes)| {
            let workloads = (0..per_group)
                .map(|i| {
                    let mut apps = Vec::new();
                    // Sample distinct applications per class requirement.
                    let mut used: Vec<&str> = Vec::new();
                    for class in classes {
                        let pool: Vec<AppSpec> = apps_in_class(*class)
                            .into_iter()
                            .filter(|a| !used.contains(&a.name))
                            .collect();
                        let pick = pool.choose(&mut rng).expect("class pool non-empty");
                        used.push(pick.name);
                        apps.push(AppRef::Named(pick.name));
                    }
                    apps.push(AppRef::Rng(5120));
                    Workload {
                        name: format!("{name}-{i}"),
                        apps,
                    }
                })
                .collect();
            ((*name).to_string(), workloads)
        })
        .collect()
}

/// L/M/H class groups for `cores`-core workloads (Figures 7b, 8b, 12, 14):
/// one RNG benchmark plus `cores - 1` applications of the class, allowing
/// repeats when the class has fewer applications than slots.
pub fn multicore_class_groups(
    cores: usize,
    per_group: usize,
    seed: u64,
) -> Vec<(String, Vec<Workload>)> {
    class_groups(cores, per_group, seed, true)
}

/// The Figure 18 variant: the same class groups without the RNG benchmark
/// (all `cores` slots are regular applications).
pub fn nonrng_class_groups(
    cores: usize,
    per_group: usize,
    seed: u64,
) -> Vec<(String, Vec<Workload>)> {
    class_groups(cores, per_group, seed, false)
}

fn class_groups(
    cores: usize,
    per_group: usize,
    seed: u64,
    with_rng: bool,
) -> Vec<(String, Vec<Workload>)> {
    assert!(cores >= 2, "class groups need at least two cores");
    let mut rng = SmallRng::seed_from_u64(seed ^ cores as u64);
    [IntensityClass::Low, IntensityClass::Medium, IntensityClass::High]
        .iter()
        .map(|class| {
            let label = format!("{} ({})", class.letter(), cores);
            let pool = apps_in_class(*class);
            let slots = if with_rng { cores - 1 } else { cores };
            let workloads = (0..per_group)
                .map(|i| {
                    let mut apps: Vec<AppRef> = (0..slots)
                        .map(|_| AppRef::Named(pool.choose(&mut rng).expect("non-empty").name))
                        .collect();
                    if with_rng {
                        apps.push(AppRef::Rng(5120));
                    }
                    Workload {
                        name: format!("{}{}-{}", class.letter(), cores, i),
                        apps,
                    }
                })
                .collect();
            (label, workloads)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_has_172_workloads() {
        let w = motivation_pairs();
        assert_eq!(w.len(), 172);
        assert!(w.iter().all(|w| w.cores() == 2));
    }

    #[test]
    fn eval_pairs_cover_all_apps() {
        let w = eval_pairs(5120);
        assert_eq!(w.len(), 43);
        assert_eq!(w[0].rng_core(), Some(1));
        assert_eq!(w[0].non_rng_cores(), vec![0]);
    }

    #[test]
    fn four_core_groups_shapes() {
        let groups = four_core_groups(10, 1);
        assert_eq!(groups.len(), 4);
        for (name, ws) in &groups {
            assert_eq!(ws.len(), 10, "{name}");
            for w in ws {
                assert_eq!(w.cores(), 4);
                assert_eq!(w.rng_core(), Some(3));
                // The three non-RNG apps are distinct.
                let mut names: Vec<String> =
                    w.non_rng_cores().iter().map(|&i| w.apps[i].label()).collect();
                names.sort();
                names.dedup();
                assert_eq!(names.len(), 3, "{}", w.name);
            }
        }
    }

    #[test]
    fn four_core_group_classes_match_labels() {
        let groups = four_core_groups(5, 2);
        let (name, ws) = &groups[3]; // HHHS
        assert_eq!(name, "HHHS");
        for w in ws {
            for &i in &w.non_rng_cores() {
                let app = crate::apps::app_by_name(&w.apps[i].label()).unwrap();
                assert_eq!(app.class(), IntensityClass::High);
            }
        }
    }

    #[test]
    fn class_groups_for_8_and_16_cores() {
        for cores in [4usize, 8, 16] {
            let groups = multicore_class_groups(cores, 10, 7);
            assert_eq!(groups.len(), 3);
            for (_, ws) in groups {
                for w in ws {
                    assert_eq!(w.cores(), cores);
                    assert!(w.rng_core().is_some());
                }
            }
        }
    }

    #[test]
    fn nonrng_groups_have_no_rng() {
        let groups = nonrng_class_groups(8, 5, 3);
        for (_, ws) in groups {
            for w in ws {
                assert_eq!(w.cores(), 8);
                assert!(w.rng_core().is_none());
            }
        }
    }

    #[test]
    fn traces_instantiate_per_core() {
        let w = Workload::pair(&crate::apps::app_by_name("mcf").unwrap(), 5120);
        let traces = w.traces();
        assert_eq!(traces.len(), 2);
    }

    #[test]
    fn group_sampling_is_seed_deterministic() {
        let a = four_core_groups(10, 42);
        let b = four_core_groups(10, 42);
        assert_eq!(a, b);
        let c = four_core_groups(10, 43);
        assert_ne!(a, c);
    }
}
