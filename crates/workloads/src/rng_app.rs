//! Synthetic RNG benchmarks (paper Section 7).
//!
//! The paper's RNG applications request 64-bit random numbers at a
//! configurable intensity — controlled by the number of instructions
//! between two requests — covering required throughputs of 640, 1280,
//! 2560, and 5120 Mb/s (plus 10 Gb/s in the appendix). They "read from all
//! banks across all channels, but they are not memory intensive in terms
//! of non-RNG requests", and their requests arrive in bursts
//! ([`RNG_BURST_REQUESTS`] back-to-back words, like a `getrandom()` call
//! for key-sized material) — the paper notes "RNG requests are received in
//! bursts and served together".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use strange_cpu::{TraceOp, TraceSource};

use crate::synth::seed_for;

/// Gap calibration constant: `gap = GAP_CALIBRATION / mbps`.
///
/// The paper controls RNG intensity by "the number of instructions between
/// two 64-bit random number requests" but does not state the mapping from
/// the required-throughput label to that gap. This constant is calibrated
/// against the paper's own baseline observations (DESIGN.md §3): with a
/// 64-bit on-demand generation of ≈198 memory cycles (≈990 CPU cycles), a
/// gap of ≈2000 instructions at the 5120 Mb/s label reproduces the
/// reported "up to 58.8% of execution time in random number generation"
/// for the most intensive RNG application running alone, along with
/// Figure 1's ≈1.9× average non-RNG slowdown.
const GAP_CALIBRATION: f64 = 10_240_000.0;

/// Requests per burst: the benchmarks ask for 512 bits (8 × 64-bit words)
/// at a time, modelling a `getrandom()` call for key-sized material — the
/// paper observes that "RNG requests are received in bursts and served
/// together".
pub const RNG_BURST_REQUESTS: u32 = 8;

/// Regular-read MPKI of the RNG benchmarks (low intensity).
const RNG_APP_MPKI: f64 = 0.5;

/// Footprint of the sparse regular reads: large enough to spread over all
/// banks and channels.
const RNG_APP_FOOTPRINT_LINES: u64 = 1 << 20;

/// Instruction gap between 64-bit requests for a required-throughput label
/// (see `GAP_CALIBRATION` in this module's source, and DESIGN.md §3, for
/// how the mapping is calibrated).
///
/// # Examples
///
/// ```
/// // The paper's four intensities, plus the appendix's 10 Gb/s point.
/// assert_eq!(strange_workloads::rng_gap_for_throughput(5120), 2000);
/// assert_eq!(strange_workloads::rng_gap_for_throughput(640), 16000);
/// ```
///
/// # Panics
///
/// Panics if `mbps` is zero.
pub fn rng_gap_for_throughput(mbps: u32) -> u32 {
    assert!(mbps > 0, "throughput must be nonzero");
    (GAP_CALIBRATION / mbps as f64).round().max(1.0) as u32
}

/// The paper's four main RNG intensities (Table 2).
pub const RNG_THROUGHPUTS_MBPS: [u32; 4] = [640, 1280, 2560, 5120];

/// The appendix A.1 high-intensity point (10 Gb/s).
pub const RNG_THROUGHPUT_HIGH_MBPS: u32 = 10_240;

/// A synthetic RNG benchmark trace.
///
/// # Examples
///
/// ```
/// use strange_cpu::{TraceOp, TraceSource};
/// use strange_workloads::RngBenchmark;
///
/// let mut bench = RngBenchmark::new(5120, 0);
/// let mut saw_rng = false;
/// for _ in 0..10 {
///     if matches!(bench.next_op(), TraceOp::Rng { .. }) {
///         saw_rng = true;
///     }
/// }
/// assert!(saw_rng);
/// ```
#[derive(Debug, Clone)]
pub struct RngBenchmark {
    gap: u32,
    mbps: u32,
    burst_left: u32,
    loads_left: u32,
    loads_per_period: u32,
    load_gap: u32,
    leader_gap: u32,
    rng: SmallRng,
}

impl RngBenchmark {
    /// Creates a benchmark requiring `mbps` Mb/s of 64-bit random numbers;
    /// `instance` varies the sparse-read address stream.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is zero.
    pub fn new(mbps: u32, instance: u64) -> Self {
        let gap = rng_gap_for_throughput(mbps);
        // One period = one burst of RNG requests plus the sparse regular
        // reads, spread over the period's instruction budget so the
        // request rate matches the label and the read rate matches
        // RNG_APP_MPKI.
        let budget = gap as f64 * RNG_BURST_REQUESTS as f64;
        let loads_per_period = (RNG_APP_MPKI / 1000.0 * budget).round().max(1.0) as u32;
        let load_gap = (budget / (loads_per_period as f64 + 1.0)) as u32;
        let leader_gap =
            (budget as u64).saturating_sub(u64::from(loads_per_period) * u64::from(load_gap))
                as u32;
        RngBenchmark {
            gap,
            mbps,
            burst_left: 0,
            loads_left: 0,
            loads_per_period,
            load_gap,
            leader_gap,
            rng: SmallRng::seed_from_u64(seed_for("rng-bench", instance ^ u64::from(mbps))),
        }
    }

    /// The required throughput in Mb/s.
    pub fn required_mbps(&self) -> u32 {
        self.mbps
    }

    /// Instructions between consecutive RNG requests.
    pub fn gap(&self) -> u32 {
        self.gap
    }

    /// Display name used in workload tables (e.g. `rng5120`).
    pub fn name(&self) -> String {
        format!("rng{}", self.mbps)
    }
}

impl TraceSource for RngBenchmark {
    fn next_op(&mut self) -> TraceOp {
        // Continue an in-flight burst: back-to-back requests.
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return TraceOp::Rng { gap: 0 };
        }
        // Sparse regular reads between bursts, uniform over a footprint
        // that touches all banks and channels as the paper specifies;
        // gaps are jittered ±50% for realistic idle-period variety.
        if self.loads_left > 0 {
            self.loads_left -= 1;
            let jitter = self.rng.gen_range(0.5..1.5);
            return TraceOp::Load {
                gap: (self.load_gap as f64 * jitter) as u32,
                addr: self.rng.gen_range(0..RNG_APP_FOOTPRINT_LINES),
            };
        }
        // Start a new period: the burst leader carries the remaining
        // instruction budget.
        self.burst_left = RNG_BURST_REQUESTS - 1;
        self.loads_left = self.loads_per_period;
        TraceOp::Rng {
            gap: self.leader_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_gaps() {
        assert_eq!(rng_gap_for_throughput(640), 16_000);
        assert_eq!(rng_gap_for_throughput(1280), 8_000);
        assert_eq!(rng_gap_for_throughput(2560), 4_000);
        assert_eq!(rng_gap_for_throughput(5120), 2_000);
        assert_eq!(rng_gap_for_throughput(10_240), 1_000);
    }

    #[test]
    fn requests_arrive_in_bursts_of_eight() {
        let mut b = RngBenchmark::new(5120, 0);
        let ops: Vec<TraceOp> = (0..1000).map(|_| b.next_op()).collect();
        // Every burst is a leader (gap > 0) followed by exactly 7
        // zero-gap requests.
        let mut i = 0;
        let mut bursts = 0;
        while i < ops.len() {
            if let TraceOp::Rng { gap } = ops[i] {
                assert!(gap > 0, "burst leader carries the period gap");
                for j in 1..RNG_BURST_REQUESTS as usize {
                    if i + j >= ops.len() {
                        break;
                    }
                    assert_eq!(ops[i + j], TraceOp::Rng { gap: 0 });
                }
                bursts += 1;
                i += RNG_BURST_REQUESTS as usize;
            } else {
                i += 1;
            }
        }
        assert!(bursts > 50, "got {bursts}");
    }

    #[test]
    fn request_rate_matches_label() {
        let mut b = RngBenchmark::new(5120, 0);
        let mut instr = 0u64;
        let mut words = 0u64;
        for _ in 0..50_000 {
            let op = b.next_op();
            instr += op.instructions();
            if matches!(op, TraceOp::Rng { .. }) {
                words += 1;
            }
        }
        // One 64-bit word per `gap` instructions on average.
        let got = instr as f64 / words as f64;
        let want = rng_gap_for_throughput(5120) as f64;
        assert!((got - want).abs() / want < 0.1, "got {got}, want ≈{want}");
    }

    #[test]
    fn regular_read_rate_is_low_intensity() {
        let mut b = RngBenchmark::new(640, 0);
        let mut instr = 0u64;
        let mut loads = 0u64;
        for _ in 0..50_000 {
            let op = b.next_op();
            instr += op.instructions();
            if matches!(op, TraceOp::Load { .. }) {
                loads += 1;
            }
        }
        let mpki = loads as f64 * 1000.0 / instr as f64;
        assert!(mpki < 1.0, "RNG apps are low intensity: {mpki}");
        assert!(mpki > 0.1, "but not read-free: {mpki}");
    }

    #[test]
    fn deterministic_per_instance() {
        let mut a = RngBenchmark::new(2560, 3);
        let mut b = RngBenchmark::new(2560, 3);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn name_formats_throughput() {
        assert_eq!(RngBenchmark::new(640, 0).name(), "rng640");
    }

    #[test]
    #[should_panic(expected = "throughput must be nonzero")]
    fn zero_throughput_rejected() {
        rng_gap_for_throughput(0);
    }
}
