//! The synthetic trace generator.
//!
//! Generates an infinite instruction trace matching an [`AppSpec`]:
//! memory events separated by geometrically distributed bubble gaps (mean
//! set by the MPKI), addresses that either continue a sequential stream
//! (with probability `row_locality`, producing row-buffer hits and
//! channel-interleaved bandwidth) or jump uniformly within the footprint
//! (producing row misses/conflicts), and writebacks mixed in at the
//! configured fraction.
//!
//! Determinism: the generator is seeded from the application name and an
//! instance index, so the same application produces the *same* access
//! stream when run alone and when run inside a workload — a requirement
//! for the paper's slowdown and MCPI-ratio metrics.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use strange_cpu::{TraceOp, TraceSource};

use crate::apps::AppSpec;

/// Deterministic seed derived from an application name and instance index
/// (FNV-1a over the name, mixed with the index).
pub fn seed_for(name: &str, instance: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ instance.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// A synthetic application trace.
///
/// # Examples
///
/// ```
/// use strange_cpu::TraceSource;
/// use strange_workloads::{app_by_name, SyntheticTrace};
///
/// let spec = app_by_name("libq").expect("in catalog");
/// let mut trace = SyntheticTrace::new(spec, 0);
/// let op = trace.next_op();
/// let _ = op;
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    spec: AppSpec,
    rng: SmallRng,
    base: u64,
    cursor: u64,
}

impl SyntheticTrace {
    /// Builds the generator for `spec`; `instance` distinguishes multiple
    /// copies of the same application in one workload.
    pub fn new(spec: AppSpec, instance: u64) -> Self {
        let seed = seed_for(spec.name, instance);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Place the footprint at a pseudo-random, line-aligned base so
        // co-running applications touch different rows.
        let base = rng.gen_range(0..1u64 << 30);
        SyntheticTrace {
            spec,
            rng,
            base,
            cursor: 0,
        }
    }

    /// The application parameters driving this trace.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    fn sample_gap(&mut self) -> u32 {
        // Geometric (memoryless) gaps around the MPKI-implied mean: gives
        // the heavy-tailed idle-period structure of Figure 5.
        let mean = self.spec.mean_gap();
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = -mean * u.ln();
        gap.min(100_000.0) as u32
    }

    fn next_addr(&mut self) -> u64 {
        if self.rng.gen::<f64>() < self.spec.row_locality {
            // Continue the stream.
            self.cursor = (self.cursor + 1) % self.spec.footprint_lines;
        } else {
            // Jump anywhere in the footprint.
            self.cursor = self.rng.gen_range(0..self.spec.footprint_lines);
        }
        self.base + self.cursor
    }
}

impl TraceSource for SyntheticTrace {
    fn next_op(&mut self) -> TraceOp {
        let gap = self.sample_gap();
        let addr = self.next_addr();
        if self.rng.gen::<f64>() < self.spec.write_fraction {
            TraceOp::Store { gap, addr }
        } else {
            TraceOp::Load { gap, addr }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::app_by_name;
    use proptest::prelude::*;

    fn collect_ops(name: &str, n: usize) -> (AppSpec, Vec<TraceOp>) {
        let spec = app_by_name(name).unwrap();
        let mut t = SyntheticTrace::new(spec, 0);
        let ops = (0..n).map(|_| t.next_op()).collect();
        (spec, ops)
    }

    fn mpki_of(ops: &[TraceOp]) -> f64 {
        let instr: u64 = ops.iter().map(|o| o.instructions()).sum();
        let loads = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Load { .. }))
            .count() as f64;
        loads * 1000.0 / instr as f64
    }

    #[test]
    fn generated_mpki_tracks_spec() {
        for name in ["mcf", "libq", "sphinx3", "povray"] {
            let (spec, ops) = collect_ops(name, 20_000);
            let got = mpki_of(&ops);
            // Loads per kilo-instruction ≈ mpki (stores excluded from MPKI
            // but included in event rate — the spec's mean_gap accounts
            // for that).
            let rel = (got - spec.mpki).abs() / spec.mpki;
            assert!(rel < 0.15, "{name}: wanted ≈{}, got {got}", spec.mpki);
        }
    }

    #[test]
    fn write_fraction_tracks_spec() {
        let (spec, ops) = collect_ops("lbm", 20_000);
        let stores = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Store { .. }))
            .count() as f64;
        let frac = stores / ops.len() as f64;
        assert!((frac - spec.write_fraction).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn high_locality_app_is_mostly_sequential() {
        let (_, ops) = collect_ops("libq", 5_000);
        let addrs: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } => Some(*addr),
                TraceOp::Rng { .. } => None,
            })
            .collect();
        let sequential = addrs
            .windows(2)
            .filter(|w| w[1] == w[0] + 1)
            .count() as f64;
        let ratio = sequential / (addrs.len() - 1) as f64;
        assert!(ratio > 0.85, "libq should stream: {ratio}");
    }

    #[test]
    fn low_locality_app_jumps() {
        let (_, ops) = collect_ops("mcf", 5_000);
        let addrs: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } => Some(*addr),
                TraceOp::Rng { .. } => None,
            })
            .collect();
        let sequential = addrs
            .windows(2)
            .filter(|w| w[1] == w[0] + 1)
            .count() as f64;
        let ratio = sequential / (addrs.len() - 1) as f64;
        assert!(ratio < 0.3, "mcf should jump: {ratio}");
    }

    #[test]
    fn same_seed_reproduces_stream() {
        let spec = app_by_name("gems").unwrap();
        let mut a = SyntheticTrace::new(spec, 0);
        let mut b = SyntheticTrace::new(spec, 0);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn instances_differ() {
        let spec = app_by_name("gems").unwrap();
        let mut a = SyntheticTrace::new(spec, 0);
        let mut b = SyntheticTrace::new(spec, 1);
        let same = (0..100).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 100, "different instances must diverge");
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let spec = app_by_name("adpcm").unwrap();
        let mut t = SyntheticTrace::new(spec, 0);
        let base = t.base;
        for _ in 0..10_000 {
            match t.next_op() {
                TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } => {
                    assert!(addr >= base && addr < base + spec.footprint_lines);
                }
                TraceOp::Rng { .. } => unreachable!("regular apps issue no RNG"),
            }
        }
    }

    proptest! {
        /// seed_for is deterministic and instance-sensitive.
        #[test]
        fn seed_is_stable(name in "[a-z]{1,12}", inst in 0u64..100) {
            prop_assert_eq!(seed_for(&name, inst), seed_for(&name, inst));
            prop_assert_ne!(seed_for(&name, inst), seed_for(&name, inst + 1));
        }
    }
}
