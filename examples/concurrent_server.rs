//! Concurrent RNG server under three fairness policies: many OS threads
//! drawing random bytes from one shared simulated DR-STRaNGe system,
//! with per-tenant QoS — and the same contended 4-tenant scenario run
//! under `Strict`, `Aging`, and `WeightedFair` tenant scheduling.
//!
//! The scenario (the shared `contended_qos_service` shape): two
//! saturating High-priority aggressors run closed loops of 256-byte
//! requests — 32 words each, exactly the RNG queue's capacity, with a
//! 200-cycle think time — while a Normal and a Low tenant issue modest
//! 64-byte requests. Under strict Section 5.2 priority the Low tenant
//! starves outright (p99 near two million cycles); priority aging (the
//! paper's `stall_limit` idea generalized to tenants) and weighted fair
//! queueing bound it, for a small toll on the aggressors.
//!
//! The driver thread advances virtual time deterministically
//! (`Pacing::Virtual`), so this prints the same numbers on every run
//! regardless of host scheduling.
//!
//! Run with: `cargo run --release --example concurrent_server`

use std::thread;

use dr_strange::core::{
    ArrivalProcess, ClientSpec, FairnessPolicy, ServiceConfig, System, SystemConfig,
};
use dr_strange::server::{Pacing, RngServer, ServerReport};
use dr_strange::trng::DRange;
use dr_strange::workloads::contended_qos_service;

const REQUESTS: u64 = 50;
/// Request size (bytes) of the measured Normal/Low tenants.
const TENANT_BYTES: usize = 64;

/// Runs the contended 4-tenant scenario (sessions 0–1: High aggressors,
/// 2: Normal, 3: Low) under `policy` and returns the final report. The
/// tenant shapes are **derived from the shared `contended_qos_service`
/// preset** — the same closed loops `tests/fairness.rs` and the
/// `fairness` bench run synchronously — so this example, the tests, and
/// `BENCH_fairness.json` cannot drift apart; here each tenant runs from
/// its own host thread against the server facade.
fn run_scenario(policy: FairnessPolicy) -> ServerReport {
    let config = SystemConfig::dr_strange(0)
        .with_fairness(policy)
        .with_service(ServiceConfig {
            sessions: true,
            ..ServiceConfig::default()
        });
    let system =
        System::new(config, Vec::new(), Box::new(DRange::new(7))).expect("valid configuration");
    let server = RngServer::start(system, Pacing::Virtual);

    let workers: Vec<_> = contended_qos_service(TENANT_BYTES, REQUESTS)
        .clients
        .into_iter()
        .map(|spec| {
            let ArrivalProcess::ClosedLoop { think } = spec.arrival else {
                panic!("contended scenario tenants are closed loops");
            };
            let (bytes, requests) = (spec.bytes, spec.requests);
            let mut session =
                server.open_session(ClientSpec::manual(bytes).with_qos(spec.qos));
            thread::spawn(move || {
                let mut buf = vec![0u8; bytes];
                let mut checksum = 0u64;
                for _ in 0..requests {
                    session.getrandom(&mut buf, think);
                    checksum ^= u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
                }
                session.close();
                checksum
            })
        })
        .collect();
    for w in workers {
        w.join().expect("tenant thread");
    }
    server.shutdown()
}

fn main() {
    let policies = [
        ("Strict", FairnessPolicy::Strict),
        ("Aging", FairnessPolicy::aging()),
        ("WeightedFair", FairnessPolicy::weighted_fair()),
    ];
    let names = ["agg-0", "agg-1", "normal", "low"];

    let mut low_p99 = Vec::new();
    let mut high_p99 = Vec::new();
    for (label, policy) in policies {
        let report = run_scenario(policy);
        let seconds = report.cpu_cycles as f64 / 4e9;
        println!(
            "{label}: served {} requests in {:.1} µs of virtual time — {:.0} Mb/s, \
             buffer hit rate {:.0}%",
            report.stats.requests_completed,
            seconds * 1e6,
            report.stats.bytes_served as f64 * 8.0 / seconds / 1e6,
            report.stats.buffer_hit_rate() * 100.0,
        );
        println!("{:>8} {:>6} {:>9} {:>9}", "tenant", "qos", "p50", "p99");
        for (id, name) in names.iter().enumerate() {
            let qos = ["High", "High", "Normal", "Low"][id];
            let p50 = report.stats.client_latency_percentile(id, 0.50).expect("served");
            let p99 = report.stats.client_latency_percentile(id, 0.99).expect("served");
            println!("{name:>8} {qos:>6} {p50:>9} {p99:>9}");
        }
        println!();
        high_p99.push(report.stats.client_latency_percentile(0, 0.99).expect("served"));
        low_p99.push(report.stats.client_latency_percentile(3, 0.99).expect("served"));
    }

    println!("Low-tenant p99 delta vs Strict (the starvation the fair policies remove):");
    for (i, (label, _)) in policies.iter().enumerate().skip(1) {
        println!(
            "  {label:>12}: low p99 {} vs {} ({:.1}x lower); high p99 {} vs {} ({:.2}x)",
            low_p99[i],
            low_p99[0],
            low_p99[0] as f64 / low_p99[i] as f64,
            high_p99[i],
            high_p99[0],
            high_p99[i] as f64 / high_p99[0] as f64,
        );
    }
}
