//! Concurrent RNG server: many OS threads drawing random bytes from one
//! shared simulated DR-STRaNGe system, with per-tenant QoS.
//!
//! Two interactive tenants — one `High` QoS, one `Low` — run closed
//! loops from their own host threads while an autonomous Poisson tenant
//! floods the service with background load. The driver thread advances
//! virtual time deterministically (`Pacing::Virtual`), so this prints
//! the same numbers on every run regardless of host scheduling.
//!
//! Run with: `cargo run --release --example concurrent_server`

use std::thread;

use dr_strange::core::{ClientSpec, QosClass, ServiceConfig, System, SystemConfig};
use dr_strange::server::{Pacing, RngServer};
use dr_strange::trng::DRange;

const REQUESTS: u64 = 150;
// 256-byte requests: 32 words each, exactly the RNG queue's capacity, so
// the two tenants genuinely contend for queue slots every cycle.
const BYTES: usize = 256;
const THINK: u64 = 200; // aggressive closed loop: contention is the point

fn main() {
    let config = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        sessions: true,
        ..ServiceConfig::default()
    });
    let system = System::new(config, Vec::new(), Box::new(DRange::new(7)))
        .expect("valid configuration");
    let server = RngServer::start(system, Pacing::Virtual);

    // Background load: an open-loop Poisson tenant below the mechanism's
    // sustained rate (a saturating higher-priority backlog would starve
    // the Low tenant outright — strict Section 5.2 priority has no
    // aging), so the interactive tenants also compete with its traffic.
    let _background = server.open_session(ClientSpec::poisson(32, 4_000, 500, 42));

    let tenants = [("high", QosClass::High), ("low", QosClass::Low)];
    let workers: Vec<_> = tenants
        .iter()
        .map(|&(name, qos)| {
            let mut session = server.open_session(ClientSpec::manual(BYTES).with_qos(qos));
            thread::spawn(move || {
                let mut buf = [0u8; BYTES];
                let mut checksum = 0u64;
                for _ in 0..REQUESTS {
                    session.getrandom(&mut buf, THINK);
                    checksum ^= u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
                }
                let id = session.id();
                session.close();
                (name, id, checksum)
            })
        })
        .collect();
    let done: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("tenant thread"))
        .collect();

    let report = server.shutdown();
    let seconds = report.cpu_cycles as f64 / 4e9;
    println!(
        "served {} requests ({} offered incl. background) in {:.1} µs of virtual time — {:.0} Mb/s",
        report.stats.requests_completed,
        report.stats.requests_offered,
        seconds * 1e6,
        report.stats.bytes_served as f64 * 8.0 / seconds / 1e6,
    );
    println!("buffer hit rate {:.0}%\n", report.stats.buffer_hit_rate() * 100.0);

    println!("{:>6} {:>4} {:>8} {:>8} {:>16}", "tenant", "sess", "p50", "p99", "xor");
    for (name, id, checksum) in done {
        let p50 = report.stats.client_latency_percentile(id, 0.50).expect("served");
        let p99 = report.stats.client_latency_percentile(id, 0.99).expect("served");
        println!("{name:>6} {id:>4} {p50:>8} {p99:>8} {checksum:>16x}");
    }
    let high_p99 = report.stats.client_latency_percentile(1, 0.99).expect("served");
    let low_p99 = report.stats.client_latency_percentile(2, 0.99).expect("served");
    println!(
        "\nSection 5.2 QoS separation under contention: high-tenant p99 {high_p99} vs \
         low-tenant p99 {low_p99} CPU cycles"
    );
}
