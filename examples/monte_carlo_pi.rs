//! Monte Carlo simulation on DRAM true randomness.
//!
//! Scientific simulation and Monte Carlo methods are the paper's second
//! motivating application domain (Section 1): they consume random numbers
//! at enormous rates, which is why TRNG *throughput* matters. This example
//! estimates π by rejection sampling with random points drawn from the two
//! DRAM TRNG mechanisms, and contrasts their throughput/latency trade-off
//! (Section 8.7): QUAC-TRNG sustains ≈6× D-RaNGe's bit rate but takes
//! longer to produce the *first* word — exactly the gap DR-STRaNGe's
//! buffer hides.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example monte_carlo_pi
//! ```

use dr_strange::core::RngDevice;
use dr_strange::trng::{DRange, QuacTrng, TrngMechanism};

const SAMPLES: u64 = 200_000;

fn estimate_pi(dev: &mut RngDevice, samples: u64) -> f64 {
    let mut inside = 0u64;
    for _ in 0..samples {
        let word = dev.next_u64();
        // Two 32-bit coordinates in [0, 1).
        let x = (word as u32) as f64 / u32::MAX as f64;
        let y = (word >> 32) as f64 / u32::MAX as f64;
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    4.0 * inside as f64 / samples as f64
}

fn main() {
    println!("Monte Carlo π with {SAMPLES} samples (64 random bits each)\n");

    for (mechanism, label) in [
        (
            Box::new(DRange::new(314)) as Box<dyn TrngMechanism>,
            "D-RaNGe",
        ),
        (Box::new(QuacTrng::new(314)), "QUAC-TRNG"),
    ] {
        let sustained = mechanism.sustained_throughput_gbps(4);
        let first_word_cycles = mechanism.demand_latency_cycles(4);
        let mut dev = RngDevice::new(mechanism, 16);
        let pi = estimate_pi(&mut dev, SAMPLES);
        let err = (pi - std::f64::consts::PI).abs();
        println!("{label:>10}: π ≈ {pi:.4} (|err| = {err:.4})");
        println!(
            "{:>10}  sustained ≈ {sustained:.2} Gb/s on 4 channels, \
             first 64-bit word ≈ {first_word_cycles} DRAM cycles",
            ""
        );
        // Time to feed this simulation at the sustained rate:
        let bits_needed = SAMPLES as f64 * 64.0;
        let ms = bits_needed / (sustained * 1e9) * 1e3;
        println!("{:>10}  {SAMPLES} samples ≈ {ms:.2} ms of generation\n", "");
    }

    println!(
        "Shape check (paper Section 8.7): QUAC-TRNG's sustained rate is \
         several times D-RaNGe's,\nwhile its first-word latency is about \
         2x higher — the trade-off DR-STRaNGe's buffer hides."
    );
}
