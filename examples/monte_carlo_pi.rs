//! Monte Carlo simulation on DRAM true randomness.
//!
//! Scientific simulation and Monte Carlo methods are the paper's second
//! motivating application domain (Section 1): they consume random numbers
//! at enormous rates, which is why TRNG *throughput* matters. This example
//! estimates π by rejection sampling with random points drawn from the two
//! DRAM TRNG mechanisms through the **cycle-accurate** `getrandom()`
//! service layer — every sample is a real simulated request, so the
//! reported generation time is measured, not estimated — and contrasts
//! their throughput/latency trade-off (Section 8.7): QUAC-TRNG sustains
//! ≈6× D-RaNGe's bit rate but takes longer to produce the *first* word —
//! exactly the gap DR-STRaNGe's buffer hides.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example monte_carlo_pi
//! ```

use dr_strange::core::RngDevice;
use dr_strange::trng::{DRange, QuacTrng, TrngMechanism};

const SAMPLES: u64 = 50_000;

fn estimate_pi(dev: &mut RngDevice, samples: u64) -> f64 {
    let mut inside = 0u64;
    for _ in 0..samples {
        let word = dev.next_u64();
        // Two 32-bit coordinates in [0, 1).
        let x = (word as u32) as f64 / u32::MAX as f64;
        let y = (word >> 32) as f64 / u32::MAX as f64;
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    4.0 * inside as f64 / samples as f64
}

fn main() {
    println!("Monte Carlo π with {SAMPLES} samples (64 random bits each)\n");

    for (mechanism, label) in [
        (
            Box::new(DRange::new(314)) as Box<dyn TrngMechanism>,
            "D-RaNGe",
        ),
        (Box::new(QuacTrng::new(314)), "QUAC-TRNG"),
    ] {
        let sustained = mechanism.sustained_throughput_gbps(4);
        let mut dev = RngDevice::new(mechanism, 16);
        // First word from a cold device: the full on-demand episode.
        let first = dev.next_u64();
        let first_word_cycles = dev.last_latency_cycles();
        let _ = first;
        let t0 = dev.cpu_cycles();
        let pi = estimate_pi(&mut dev, SAMPLES);
        let span = dev.cpu_cycles() - t0;
        let measured_ms = span as f64 / 4e9 * 1e3;
        let measured_mbps = SAMPLES as f64 * 64.0 / (span as f64 / 4e9) / 1e6;
        let err = (pi - std::f64::consts::PI).abs();
        println!("{label:>10}: π ≈ {pi:.4} (|err| = {err:.4})");
        println!(
            "{:>10}  first 64-bit word: {first_word_cycles} CPU cycles on demand \
             (measured, cold buffer)",
            ""
        );
        println!(
            "{:>10}  {SAMPLES} samples in {measured_ms:.2} ms of simulated device time \
             ({measured_mbps:.0} Mb/s measured vs {:.0} Mb/s analytic sustained)\n",
            "",
            sustained * 1e3
        );
    }

    println!(
        "Shape check (paper Section 8.7): QUAC-TRNG's sustained rate is \
         several times D-RaNGe's,\nwhile its first-word latency is higher — \
         the trade-off DR-STRaNGe's buffer hides."
    );
}
