//! Quickstart: run one of the paper's dual-core workloads under the
//! RNG-oblivious baseline, the Greedy Idle design, and DR-STRaNGe, and
//! print the headline metrics (slowdowns, fairness, buffer serve rate).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dr_strange::core::{RunResult, System, SystemConfig};
use dr_strange::metrics::{unfairness_index, MemSlowdown};
use dr_strange::trng::DRange;
use dr_strange::workloads::{app_by_name, Workload};

const INSTRUCTIONS: u64 = 100_000;

fn run(config: SystemConfig, workload: &Workload) -> RunResult {
    let config = config.with_instruction_target(INSTRUCTIONS);
    System::new(config, workload.traces(), Box::new(DRange::new(1)))
        .expect("valid configuration")
        .run()
}

fn main() {
    // sphinx3 (a medium-intensity SPEC app) co-running with the paper's
    // most intensive synthetic RNG benchmark.
    let app = app_by_name("sphinx3").expect("in catalog");
    let workload = Workload::pair(&app, 5120);
    println!("workload: {}\n", workload.name);

    // Alone baselines for slowdown and MCPI normalization.
    let alone_app = run(
        SystemConfig::rng_oblivious(1),
        &Workload {
            name: "alone".into(),
            apps: vec![workload.apps[0].clone()],
        },
    );
    let alone_rng = run(
        SystemConfig::rng_oblivious(1),
        &Workload {
            name: "alone".into(),
            apps: vec![workload.apps[1].clone()],
        },
    );

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "design", "sd(nonRNG)", "sd(RNG)", "unfairness", "serve rate", "gens"
    );
    for (name, config) in [
        ("RNG-Oblivious", SystemConfig::rng_oblivious(2)),
        ("Greedy Idle", SystemConfig::greedy_idle(2)),
        ("DR-STRaNGe", SystemConfig::dr_strange(2)),
    ] {
        let res = run(config, &workload);
        let sd_app = res.exec_cycles(0) as f64 / alone_app.exec_cycles(0) as f64;
        let sd_rng = res.exec_cycles(1) as f64 / alone_rng.exec_cycles(0) as f64;
        let unfairness = unfairness_index(&[
            MemSlowdown::from_mcpi(res.cores[0].mcpi(), alone_app.cores[0].mcpi()),
            MemSlowdown::from_mcpi(res.cores[1].mcpi(), alone_rng.cores[0].mcpi()),
        ])
        .expect("two slowdowns");
        println!(
            "{name:<14} {sd_app:>10.2} {sd_rng:>10.2} {unfairness:>10.2} {:>12.2} {:>10}",
            res.stats.buffer_serve_rate(),
            res.stats.demand_generations,
        );
    }
    println!(
        "\nExpected shape (paper Figs. 6 and 9): DR-STRaNGe improves both \
         slowdowns over the baseline,\nserves most RNG requests from the \
         buffer, and lowers the unfairness index."
    );
}
