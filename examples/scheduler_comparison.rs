//! Memory-scheduler comparison on a mixed workload (paper Section 8.4).
//!
//! Runs a four-core workload (three applications of different memory
//! intensities plus an RNG benchmark) under FR-FCFS+Cap, BLISS, and the
//! RNG-aware DR-STRaNGe scheduler (no buffer, isolating the scheduling
//! effect like Figure 11), and prints weighted speedup and fairness.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use dr_strange::core::{FillMode, RngRouting, RunResult, SchedulerKind, System, SystemConfig};
use dr_strange::metrics::{unfairness_index, weighted_speedup, MemSlowdown};
use dr_strange::trng::DRange;
use dr_strange::workloads::{four_core_groups, Workload};

const INSTRUCTIONS: u64 = 60_000;

fn run(config: SystemConfig, workload: &Workload) -> RunResult {
    let config = config.with_instruction_target(INSTRUCTIONS);
    System::new(config, workload.traces(), Box::new(DRange::new(9)))
        .expect("valid configuration")
        .run()
}

fn alone(workload: &Workload, core: usize) -> RunResult {
    let single = Workload {
        name: format!("{}-alone{core}", workload.name),
        apps: vec![workload.apps[core].clone()],
    };
    run(SystemConfig::rng_oblivious(1), &single)
}

fn main() {
    // One LLHS workload: two low- and one high-intensity app + rng5120.
    let groups = four_core_groups(1, 11);
    let workload = groups[1].1[0].clone();
    let labels: Vec<String> = workload.apps.iter().map(|a| a.label()).collect();
    println!("workload: {} = {}\n", workload.name, labels.join(" + "));

    let alones: Vec<RunResult> = (0..workload.cores()).map(|i| alone(&workload, i)).collect();

    println!(
        "{:<14} {:>18} {:>12} {:>12}",
        "scheduler", "weighted speedup", "unfairness", "rng slowdown"
    );
    for (name, config) in [
        (
            "FR-FCFS+Cap16",
            SystemConfig::rng_oblivious(4).with_scheduler(SchedulerKind::FrFcfsCap(16)),
        ),
        (
            "BLISS",
            SystemConfig::rng_oblivious(4).with_scheduler(SchedulerKind::Bliss),
        ),
        ("RNG-Aware", {
            // The Figure 11 configuration: RNG-aware routing, no buffer.
            let mut cfg = SystemConfig::dr_strange(4);
            cfg.routing = RngRouting::Aware;
            cfg.fill = FillMode::None;
            cfg.buffer_entries = 0;
            cfg
        }),
    ] {
        let res = run(config, &workload);
        let rng_core = workload.rng_core().expect("workload has an RNG app");
        let ipc_pairs: Vec<(f64, f64)> = workload
            .non_rng_cores()
            .iter()
            .map(|&i| (res.cores[i].ipc(), alones[i].cores[0].ipc()))
            .collect();
        let ws = weighted_speedup(&ipc_pairs).expect("non-empty");
        let slowdowns: Vec<MemSlowdown> = (0..workload.cores())
            .map(|i| MemSlowdown::from_mcpi(res.cores[i].mcpi(), alones[i].cores[0].mcpi()))
            .collect();
        let unfairness = unfairness_index(&slowdowns).expect("non-empty");
        let rng_sd =
            res.exec_cycles(rng_core) as f64 / alones[rng_core].exec_cycles(0) as f64;
        println!("{name:<14} {ws:>18.3} {unfairness:>12.2} {rng_sd:>12.2}");
    }
    println!(
        "\nExpected shape (paper Fig. 11): the RNG-aware scheduler improves \
         fairness over both\nbaselines even without a buffer, and BLISS \
         trails FR-FCFS+Cap on these RNG-heavy mixes."
    );
}
