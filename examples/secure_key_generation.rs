//! Secure key generation through the DR-STRaNGe application interface.
//!
//! The paper's motivating use case (Sections 1 and 3): security-critical
//! applications — key generation, authentication, nonce/padding material —
//! need *true* random numbers at high throughput on commodity hardware.
//! This example exercises the `getrandom()`-style interface end to end —
//! every call is served by the cycle-accurate service layer (a real
//! simulated memory subsystem, RNG queue, and generation episodes, not an
//! API-level model):
//!
//! 1. generates 256-bit keys from the D-RaNGe-backed device and reports
//!    the true cycle cost of each call,
//! 2. shows the fast (buffer) vs slow (on-demand) serve paths the paper's
//!    buffering mechanism creates — and their measured latency gap, the
//!    Section 6 timing side channel,
//! 3. validates the bit stream with the statistical quality tests, and
//! 4. demonstrates the Section 6 security property: served bits are
//!    discarded, so no two requesters ever share key material.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example secure_key_generation
//! ```

use dr_strange::core::{RngDevice, ServeKind};
use dr_strange::trng::{
    all_tests_pass, monobit_test, runs_test, serial_two_bit_test, DRange, QuacTrng,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// CPU cycles → nanoseconds at the paper's 4 GHz clock.
fn ns(cycles: u64) -> f64 {
    cycles as f64 / 4.0
}

fn main() {
    let mut dev = RngDevice::new(Box::new(DRange::new(0xD1CE)), 16);
    println!("device: {} with a 16-entry buffer\n", dev.mechanism_name());

    // --- 1. A cold key: the buffer is empty, so generation is on demand,
    // and the call is charged the full mode-switch + generation episode.
    let mut key = [0u8; 32];
    let kind = dev.getrandom(&mut key);
    let cold_cycles = dev.last_latency_cycles();
    println!("cold 256-bit key ({kind:?}):  {}", hex(&key));
    println!("  served in {cold_cycles} CPU cycles ({:.0} ns)", ns(cold_cycles));
    assert_eq!(kind, ServeKind::Generated);

    // --- 2. Background filling (what the idleness predictor does during
    // idle DRAM periods) turns the next request into a fast buffer hit.
    dev.background_fill(64);
    let mut key2 = [0u8; 32];
    let kind2 = dev.getrandom(&mut key2);
    let warm_cycles = dev.last_latency_cycles();
    println!("warm 256-bit key ({kind2:?}):     {}", hex(&key2));
    println!(
        "  served in {warm_cycles} CPU cycles ({:.0} ns) — {:.1}x faster than cold; \
         this observable gap is the Section 6 timing side channel",
        ns(warm_cycles),
        cold_cycles as f64 / warm_cycles as f64
    );
    assert_eq!(kind2, ServeKind::Buffer);
    assert!(warm_cycles < cold_cycles);

    // --- 3. Security property: distinct requesters get distinct material.
    assert_ne!(key, key2);
    let mut session_keys = Vec::new();
    for _ in 0..64 {
        let mut k = [0u8; 16];
        dev.getrandom(&mut k);
        session_keys.push(k);
    }
    session_keys.sort();
    let before = session_keys.len();
    session_keys.dedup();
    assert_eq!(before, session_keys.len(), "no repeated session keys");
    println!("\n64 session keys generated, all distinct ✓");

    // --- 4. Statistical quality of the raw stream (cycle-accurately
    // served: the simulated clock advances with every word).
    let t0 = dev.cpu_cycles();
    let words: Vec<u64> = (0..4096).map(|_| dev.next_u64()).collect();
    let span = dev.cpu_cycles() - t0;
    let mono = monobit_test(&words);
    let runs = runs_test(&words);
    let serial = serial_two_bit_test(&words);
    println!("\nquality of 262,144 bits from {}:", dev.mechanism_name());
    println!(
        "  (drawn in {span} simulated CPU cycles ≈ {:.2} ms of device time, \
         {:.0} Mb/s sustained)",
        span as f64 / 4e9 * 1e3,
        4096.0 * 64.0 / (span as f64 / 4e9) / 1e6
    );
    println!("  monobit  z = {:>6.2}  passed = {}", mono.statistic, mono.passed);
    println!("  runs     z = {:>6.2}  passed = {}", runs.statistic, runs.passed);
    println!("  serial  χ² = {:>6.2}  passed = {}", serial.statistic, serial.passed);

    // QUAC-TRNG's post-processed output passes all tests outright.
    let mut quac = RngDevice::new(Box::new(QuacTrng::new(0xD1CE)), 16);
    let quac_words: Vec<u64> = (0..4096).map(|_| quac.next_u64()).collect();
    println!(
        "  QUAC-TRNG all three tests passed = {}",
        all_tests_pass(&quac_words)
    );
}
