//! Secure key generation through the DR-STRaNGe application interface.
//!
//! The paper's motivating use case (Sections 1 and 3): security-critical
//! applications — key generation, authentication, nonce/padding material —
//! need *true* random numbers at high throughput on commodity hardware.
//! This example exercises the `getrandom()`-style interface end to end:
//!
//! 1. generates 256-bit keys from the D-RaNGe-backed device,
//! 2. shows the fast (buffer) vs slow (on-demand) serve paths the paper's
//!    buffering mechanism creates,
//! 3. validates the bit stream with the statistical quality tests, and
//! 4. demonstrates the Section 6 security property: served bits are
//!    discarded, so no two requesters ever share key material.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example secure_key_generation
//! ```

use dr_strange::core::{RngDevice, ServeKind};
use dr_strange::trng::{
    all_tests_pass, monobit_test, runs_test, serial_two_bit_test, DRange, QuacTrng,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn main() {
    let mut dev = RngDevice::new(Box::new(DRange::new(0xD1CE)), 16);
    println!("device: {} with a 16-entry buffer\n", dev.mechanism_name());

    // --- 1. A cold key: the buffer is empty, so generation is on demand.
    let mut key = [0u8; 32];
    let kind = dev.getrandom(&mut key);
    println!("cold 256-bit key ({kind:?}):  {}", hex(&key));
    assert_eq!(kind, ServeKind::Generated);

    // --- 2. Background filling (what the idleness predictor does during
    // idle DRAM periods) turns the next request into a fast buffer hit.
    dev.background_fill(64);
    let mut key2 = [0u8; 32];
    let kind2 = dev.getrandom(&mut key2);
    println!("warm 256-bit key ({kind2:?}):     {}", hex(&key2));
    assert_eq!(kind2, ServeKind::Buffer);

    // --- 3. Security property: distinct requesters get distinct material.
    assert_ne!(key, key2);
    let mut session_keys = Vec::new();
    for _ in 0..64 {
        let mut k = [0u8; 16];
        dev.getrandom(&mut k);
        session_keys.push(k);
    }
    session_keys.sort();
    let before = session_keys.len();
    session_keys.dedup();
    assert_eq!(before, session_keys.len(), "no repeated session keys");
    println!("\n64 session keys generated, all distinct ✓");

    // --- 4. Statistical quality of the raw stream.
    let words: Vec<u64> = (0..4096).map(|_| dev.next_u64()).collect();
    let mono = monobit_test(&words);
    let runs = runs_test(&words);
    let serial = serial_two_bit_test(&words);
    println!("\nquality of 262,144 bits from {}:", dev.mechanism_name());
    println!("  monobit  z = {:>6.2}  passed = {}", mono.statistic, mono.passed);
    println!("  runs     z = {:>6.2}  passed = {}", runs.statistic, runs.passed);
    println!("  serial  χ² = {:>6.2}  passed = {}", serial.statistic, serial.passed);

    // QUAC-TRNG's post-processed output passes all tests outright.
    let mut quac = RngDevice::new(Box::new(QuacTrng::new(0xD1CE)), 16);
    let quac_words: Vec<u64> = (0..4096).map(|_| quac.next_u64()).collect();
    println!(
        "  QUAC-TRNG all three tests passed = {}",
        all_tests_pass(&quac_words)
    );
}
