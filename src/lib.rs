//! # DR-STRaNGe — end-to-end system design for DRAM-based TRNGs
//!
//! A full reproduction of *"DR-STRaNGe: End-to-End System Design for
//! DRAM-based True Random Number Generators"* (Bostancı et al., HPCA
//! 2022), built from scratch in Rust: the cycle-level DRAM/CPU simulation
//! substrate, the DRAM-TRNG mechanism models (D-RaNGe, QUAC-TRNG), the
//! DR-STRaNGe system itself (random-number buffering with DRAM idleness
//! prediction, RNG-aware memory scheduling, and a `getrandom()`-style
//! application interface), the paper's workloads, and the measurement
//! stack (performance/fairness metrics, energy, area).
//!
//! This crate is a facade: it re-exports the workspace crates under short
//! module names. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every figure and
//! table.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`dram`] | `strange-dram` | DDR3 banks/timing, controller, FR-FCFS+Cap, BLISS |
//! | [`cpu`] | `strange-cpu` | trace-driven OoO core model |
//! | [`trng`] | `strange-trng` | D-RaNGe, QUAC-TRNG, entropy substrate, quality tests |
//! | [`core`] | `strange-core` | buffer, predictors, RNG-aware engine, `System` |
//! | [`server`] | `strange-server` | host-concurrent RNG server front-end (async submit/drain) |
//! | [`workloads`] | `strange-workloads` | 43-app catalog, RNG benchmarks, mixes |
//! | [`metrics`] | `strange-metrics` | slowdown, weighted speedup, unfairness, box plots |
//! | [`energy`] | `strange-energy` | DRAMPower-style energy, CACTI-style area |
//!
//! # Quickstart
//!
//! Run one of the paper's dual-core workloads under the RNG-oblivious
//! baseline and under DR-STRaNGe, and compare:
//!
//! ```
//! use dr_strange::core::{System, SystemConfig};
//! use dr_strange::trng::DRange;
//! use dr_strange::workloads::eval_pairs;
//!
//! let workload = &eval_pairs(5120)[4]; // sphinx3 + rng5120
//! let run = |config: SystemConfig| {
//!     let config = config.with_instruction_target(20_000);
//!     System::new(config, workload.traces(), Box::new(DRange::new(1)))
//!         .expect("valid configuration")
//!         .run()
//! };
//! let baseline = run(SystemConfig::rng_oblivious(2));
//! let drstrange = run(SystemConfig::dr_strange(2));
//! // DR-STRaNGe hides TRNG latency behind the random number buffer.
//! assert!(drstrange.stats.buffer_serve_rate() > 0.0);
//! assert!(drstrange.exec_cycles(1) <= baseline.exec_cycles(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use strange_core as core;
pub use strange_cpu as cpu;
pub use strange_dram as dram;
pub use strange_energy as energy;
pub use strange_metrics as metrics;
pub use strange_server as server;
pub use strange_trng as trng;
pub use strange_workloads as workloads;
