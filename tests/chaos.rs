//! Chaos soak: seeded random [`FaultPlan`]s driven through
//! watchdog-enabled systems, with the recovery invariants asserted on
//! every scenario:
//!
//! * the run drains (graceful degradation — no fault combination wedges
//!   generation);
//! * the stuck channel every plan carries is detected and quarantined;
//! * probe words are tested-and-discarded, never buffered or served
//!   (`tainted_words_discarded == probe_rounds * probe_words`);
//! * `Reference` ≡ `FastForward` bit-identity, including the served
//!   random values.
//!
//! The tier-1 run covers a handful of seeds so `cargo test` stays fast;
//! set `STRANGE_CHAOS_SEEDS=<n>` to soak more (CI's perf-smoke lane and
//! local overnight runs).

use dr_strange::core::{
    FaultPlan, RunResult, SimMode, System, SystemConfig, WatchdogConfig,
};
use dr_strange::trng::DRange;
use dr_strange::workloads::{contended_qos_service, fleet_shard_seed};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeds soaked by default; `STRANGE_CHAOS_SEEDS` raises it.
const DEFAULT_SEEDS: u64 = 4;

fn seed_count() -> u64 {
    std::env::var("STRANGE_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEEDS)
}

/// A watchdog tuned so detect → quarantine → probe cycles fit inside a
/// test-sized service run.
fn watchdog() -> WatchdogConfig {
    WatchdogConfig {
        probe_period: 4_000,
        ..WatchdogConfig::standard()
    }
}

/// Builds a random-but-valid fault plan: one long stuck-at-one quality
/// derate on a random victim channel (the detection anchor every
/// scenario must catch), plus random outages, stall storms, a global
/// entropy derate, and buffer corruption. Each kind places at most one
/// window per resource, so the plan respects the overlap rules by
/// construction ([`FaultPlan::validate`] still checks it).
fn chaos_plan(rng: &mut SmallRng, channels: u32) -> FaultPlan {
    let victim = rng.gen_range(0..channels);
    let mut plan = FaultPlan::new().channel_derate(
        rng.gen_range(200..2_000u64),
        victim,
        0,
        1,
        rng.gen_range(30_000..80_000u64),
    );
    for ch in 0..channels {
        if rng.gen_bool(0.4) {
            plan = plan.outage(
                rng.gen_range(1_000..40_000u64),
                ch,
                rng.gen_range(2_000..10_000u64),
            );
        }
        if rng.gen_bool(0.4) {
            plan = plan.stall_storm(
                rng.gen_range(1_000..40_000u64),
                ch,
                rng.gen_range(2_000..10_000u64),
            );
        }
    }
    if rng.gen_bool(0.5) {
        plan = plan.derate(
            rng.gen_range(1_000..30_000u64),
            1,
            2,
            rng.gen_range(5_000..20_000u64),
        );
    }
    for _ in 0..rng.gen_range(0..3usize) {
        plan = plan.corruption(rng.gen_range(1_000..60_000u64), rng.gen_range(1..8u32));
    }
    // The builder appends in generation order; validate requires the
    // schedule sorted by cycle.
    plan.events.sort_by_key(|e| e.at);
    plan
}

fn run_mode(cfg: &SystemConfig, mode: SimMode) -> (RunResult, Vec<u64>, u64) {
    let mut sys = System::new(
        cfg.clone().with_sim_mode(mode),
        Vec::new(),
        Box::new(DRange::new(9)),
    )
    .expect("chaos plans are valid by construction");
    sys.set_value_log(true);
    let res = sys.run();
    let values = sys.mem().value_log().to_vec();
    let skipped = sys.skipped_cycles();
    (res, values, skipped)
}

/// Runs one seeded scenario in both modes and asserts every invariant.
fn soak_one(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let plan = chaos_plan(&mut rng, 4);
    let events = plan.events.len();
    // Mixed perf-toggle coverage: the sublinear-tick features must be
    // invisible to every invariant in any combination. Seed bits cycle
    // through all four combinations across the default soak.
    let dirty = seed & 1 == 0;
    let burst = seed & 2 == 0;
    let cfg = SystemConfig::dr_strange(0)
        .with_watchdog(watchdog())
        .with_fault_plan(plan)
        .with_dirty_readiness(dirty)
        .with_burst_events(burst)
        .with_service(contended_qos_service(64, 30));
    let (reference, ref_values, ref_skipped) = run_mode(&cfg, SimMode::Reference);
    let (fast, fast_values, fast_skipped) = run_mode(&cfg, SimMode::FastForward);

    // Bit-identity across simulation modes.
    assert_eq!(ref_skipped, 0, "seed {seed}: reference must not skip");
    assert!(fast_skipped > 0, "seed {seed}: fast-forward must skip");
    assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "seed {seed}: cycles");
    assert_eq!(fast.stats, reference.stats, "seed {seed}: engine stats");
    assert_eq!(fast.channels, reference.channels, "seed {seed}: channels");
    assert_eq!(fast.service, reference.service, "seed {seed}: service");
    assert_eq!(fast_values, ref_values, "seed {seed}: served values");

    // Graceful degradation: the run drains despite the plan.
    assert!(
        !fast.hit_cycle_limit,
        "seed {seed}: client targets must be met under {events} fault events"
    );
    assert_eq!(
        fast.stats.faults_injected, events as u64,
        "seed {seed}: every planned event fires"
    );

    // Detection: the anchor stuck channel always trips quarantine.
    assert!(
        fast.stats.quarantines >= 1,
        "seed {seed}: the stuck channel must be quarantined: {:?}",
        fast.stats
    );
    // Probe hygiene: every probe word is tested and discarded — tainted
    // draws never reach the buffer or a caller.
    assert_eq!(
        fast.stats.tainted_words_discarded,
        fast.stats.probe_rounds * u64::from(watchdog().probe_words),
        "seed {seed}: probe accounting identity"
    );
    assert!(
        fast.stats.readmissions <= fast.stats.quarantines,
        "seed {seed}: re-admissions cannot outnumber quarantines"
    );
}

#[test]
fn seeded_chaos_scenarios_uphold_recovery_invariants() {
    for seed in 0..seed_count() {
        soak_one(seed);
    }
}

/// Fleet chaos soak: each seed injects its fault plan into one
/// *random* shard of a 3-shard fleet while the other shards run clean.
/// Fault isolation is structural (shards share nothing), so the faulty
/// shard must uphold every single-system recovery invariant while the
/// clean shards run fault-free — and the parallel fleet run must be
/// bit-identical to running each shard alone.
fn fleet_soak_one(seed: u64) {
    use dr_strange::server::fleet::{run_shards, run_shards_sequential};

    let mut rng = SmallRng::seed_from_u64(seed);
    let plan = chaos_plan(&mut rng, 4);
    let faulty_shard = rng.gen_range(0..3usize);
    let build = || -> Vec<System> {
        (0..3)
            .map(|s| {
                let mut cfg = SystemConfig::dr_strange(0)
                    .with_watchdog(watchdog())
                    .with_service(contended_qos_service(64, 12));
                if s == faulty_shard {
                    cfg = cfg.with_fault_plan(plan.clone());
                }
                System::new(
                    cfg.with_sim_mode(SimMode::FastForward),
                    Vec::new(),
                    Box::new(DRange::new(fleet_shard_seed(2022, s))),
                )
                .expect("chaos plans are valid by construction")
            })
            .collect()
    };
    let parallel = run_shards(build());
    let sequential = run_shards_sequential(build());
    for (s, ((pr, _), (sr, _))) in parallel.iter().zip(&sequential).enumerate() {
        assert_eq!(
            pr.service, sr.service,
            "seed {seed}: shard {s} parallel ≡ sequential"
        );
        assert_eq!(pr.stats, sr.stats, "seed {seed}: shard {s} engine stats");
    }
    for (s, (res, _)) in parallel.iter().enumerate() {
        assert!(
            !res.hit_cycle_limit,
            "seed {seed}: shard {s} must drain despite the plan"
        );
        if s == faulty_shard {
            assert_eq!(
                res.stats.faults_injected,
                plan.events.len() as u64,
                "seed {seed}: every planned event fires on the faulty shard"
            );
            assert!(
                res.stats.quarantines >= 1,
                "seed {seed}: the stuck channel must be quarantined"
            );
        } else {
            assert_eq!(
                res.stats.faults_injected, 0,
                "seed {seed}: shard {s} is clean — fault isolation is structural"
            );
            assert_eq!(
                res.stats.quarantines, 0,
                "seed {seed}: clean shard {s} must not quarantine"
            );
        }
    }
}

#[test]
fn fleet_chaos_faults_stay_on_their_shard() {
    for seed in 0..seed_count() {
        fleet_soak_one(seed);
    }
}
