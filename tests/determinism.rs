//! Full-stack determinism: identical configurations and seeds must yield
//! bit-identical results, which the experiment harness relies on (alone
//! baselines are cached and reused across figures) — and the event-driven
//! fast-forward engine must be bit-identical to the per-cycle reference
//! across every design point.

use dr_strange::core::{RunResult, SchedulerKind, SimMode, System, SystemConfig};
use dr_strange::energy::{system_energy, Ddr3PowerParams};
use dr_strange::trng::{DRange, QuacTrng};
use dr_strange::workloads::{eval_pairs, Workload};

fn run_workload(wl: &Workload, seed: u64) -> RunResult {
    let cfg = SystemConfig::dr_strange(wl.cores()).with_instruction_target(30_000);
    System::new(cfg, wl.traces(), Box::new(DRange::new(seed)))
        .expect("valid configuration")
        .run()
}

#[test]
fn identical_runs_are_bit_identical() {
    let wl = &eval_pairs(5120)[10];
    let a = run_workload(wl, 7);
    let b = run_workload(wl, 7);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
    assert_eq!(a.stats.rng_requests, b.stats.rng_requests);
    assert_eq!(a.stats.fill_batches, b.stats.fill_batches);
    assert_eq!(a.stats.buffer_serve.hits(), b.stats.buffer_serve.hits());
    assert_eq!(a.stats.predictor, b.stats.predictor);
    for (ca, cb) in a.cores.iter().zip(&b.cores) {
        assert_eq!(ca.finish.map(|f| f.at_cycle), cb.finish.map(|f| f.at_cycle));
        assert_eq!(ca.end_stats, cb.end_stats);
    }
    for (ca, cb) in a.channels.iter().zip(&b.channels) {
        assert_eq!(ca.acts, cb.acts);
        assert_eq!(ca.reads, cb.reads);
        assert_eq!(ca.idle_periods, cb.idle_periods);
    }
    // Downstream energy is therefore identical too.
    let t = dr_strange::dram::TimingParams::ddr3_1600();
    let p = Ddr3PowerParams::default();
    assert_eq!(
        system_energy(&a.channels, &t, &p).total_nj(),
        system_energy(&b.channels, &t, &p).total_nj()
    );
}

#[test]
fn different_trng_seed_changes_values_not_timing() {
    // The entropy seed changes which bits are produced, but generation
    // timing is seed-independent, so performance results are unchanged.
    let wl = &eval_pairs(5120)[4];
    let a = run_workload(wl, 1);
    let b = run_workload(wl, 2);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
    assert_eq!(a.exec_cycles(0), b.exec_cycles(0));
    assert_eq!(a.exec_cycles(1), b.exec_cycles(1));
}

#[test]
fn mechanism_changes_timing_deterministically() {
    let wl = &eval_pairs(5120)[4];
    let cfg = || SystemConfig::dr_strange(2).with_instruction_target(30_000);
    let quac_a = System::new(cfg(), wl.traces(), Box::new(QuacTrng::new(1)))
        .expect("valid configuration")
        .run();
    let quac_b = System::new(cfg(), wl.traces(), Box::new(QuacTrng::new(1)))
        .expect("valid configuration")
        .run();
    assert_eq!(quac_a.cpu_cycles, quac_b.cpu_cycles);
    // And QUAC differs from D-RaNGe (different round shapes).
    let drange = run_workload(wl, 1);
    assert_ne!(quac_a.stats.fill_batches, drange.stats.fill_batches);
}

#[test]
fn workload_traces_are_reproducible() {
    let wl = &eval_pairs(5120)[0];
    let mut t1 = wl.traces();
    let mut t2 = wl.traces();
    for (a, b) in t1.iter_mut().zip(t2.iter_mut()) {
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}

/// Fast-forward vs. per-cycle reference: the two simulation modes must be
/// bit-identical in every observable output, for every design point.
mod fastforward {
    use super::*;

    /// Runs `cfg` in both modes on `wl` and asserts bit-identical results,
    /// including the served random values. Returns the fraction of CPU
    /// cycles the fast mode skipped, so callers can assert the comparison
    /// was not vacuous (a fast path degenerating to per-cycle stepping
    /// would trivially match the reference).
    fn assert_modes_identical(cfg: SystemConfig, wl: &Workload, label: &str) -> f64 {
        let run = |mode: SimMode| {
            let cfg = cfg.clone().with_sim_mode(mode);
            let mut sys = System::new(cfg, wl.traces(), Box::new(DRange::new(3)))
                .expect("valid configuration");
            sys.set_value_log(true);
            let res = sys.run();
            let values = sys.mem().value_log().to_vec();
            let skipped = sys.skipped_cycles();
            (res, values, skipped)
        };
        let (reference, ref_values, ref_skipped) = run(SimMode::Reference);
        let (fast, fast_values, fast_skipped) = run(SimMode::FastForward);
        assert_eq!(ref_skipped, 0, "{label}: reference mode must not skip");
        assert!(fast_skipped > 0, "{label}: fast-forward must skip something");
        assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "{label}: cpu cycles");
        assert_eq!(fast.mem_cycles, reference.mem_cycles, "{label}: mem cycles");
        assert_eq!(
            fast.hit_cycle_limit, reference.hit_cycle_limit,
            "{label}: cycle limit"
        );
        assert_eq!(fast.stats, reference.stats, "{label}: engine stats");
        assert_eq!(fast.channels, reference.channels, "{label}: channel stats");
        assert_eq!(fast.cores.len(), reference.cores.len());
        for (i, (f, r)) in fast.cores.iter().zip(&reference.cores).enumerate() {
            assert_eq!(
                f.finish.map(|s| (s.at_cycle, s.stats)),
                r.finish.map(|s| (s.at_cycle, s.stats)),
                "{label}: core {i} finish snapshot"
            );
            assert_eq!(f.end_stats, r.end_stats, "{label}: core {i} end stats");
        }
        assert_eq!(fast_values, ref_values, "{label}: served random values");
        assert_eq!(
            fast.service, reference.service,
            "{label}: service stats (incl. latency log)"
        );
        fast_skipped as f64 / fast.cpu_cycles as f64
    }

    fn base(cfg: SystemConfig) -> SystemConfig {
        cfg.with_instruction_target(25_000)
    }

    #[test]
    fn oblivious_baseline_frfcfs_cap() {
        let wl = &eval_pairs(5120)[10];
        assert_modes_identical(base(SystemConfig::rng_oblivious(2)), wl, "oblivious");
    }

    #[test]
    fn oblivious_pure_frfcfs() {
        let wl = &eval_pairs(5120)[4];
        let cfg = base(SystemConfig::rng_oblivious(2)).with_scheduler(SchedulerKind::FrFcfs);
        assert_modes_identical(cfg, wl, "frfcfs");
    }

    #[test]
    fn oblivious_bliss() {
        let wl = &eval_pairs(5120)[7];
        let cfg = base(SystemConfig::rng_oblivious(2)).with_scheduler(SchedulerKind::Bliss);
        assert_modes_identical(cfg, wl, "bliss");
    }

    #[test]
    fn dr_strange_predictive_simple() {
        let wl = &eval_pairs(5120)[10];
        assert_modes_identical(base(SystemConfig::dr_strange(2)), wl, "dr-strange");
    }

    #[test]
    fn dr_strange_bliss_scheduler() {
        let wl = &eval_pairs(5120)[13];
        let cfg = base(SystemConfig::dr_strange(2)).with_scheduler(SchedulerKind::Bliss);
        assert_modes_identical(cfg, wl, "dr-strange+bliss");
    }

    #[test]
    fn dr_strange_qlearning_predictor() {
        let wl = &eval_pairs(5120)[2];
        assert_modes_identical(base(SystemConfig::dr_strange_rl(2)), wl, "dr-strange+rl");
    }

    #[test]
    fn dr_strange_no_predictor() {
        let wl = &eval_pairs(5120)[5];
        assert_modes_identical(
            base(SystemConfig::dr_strange_no_predictor(2)),
            wl,
            "no-pred",
        );
    }

    #[test]
    fn greedy_oracle_fill() {
        let wl = &eval_pairs(5120)[10];
        assert_modes_identical(base(SystemConfig::greedy_idle(2)), wl, "greedy");
    }

    #[test]
    fn priorities_and_starvation_path() {
        let wl = &eval_pairs(5120)[10];
        let cfg = base(SystemConfig::dr_strange(2))
            .with_buffer_entries(1)
            .with_priorities(vec![2, 1]);
        assert_modes_identical(cfg, wl, "priorities");
    }

    #[test]
    fn burst_events_under_stability_coalescing() {
        // A one-entry buffer forces frequent demand generation, so each
        // coalesced batch completes as one k-entry burst event. Fast
        // forward must honor the burst's due cycle exactly, with the
        // feature on (one event per batch) and off (one event per
        // request, the legacy granularity).
        let wl = &eval_pairs(5120)[7];
        for (burst, label) in [(true, "burst-stability-on"), (false, "burst-stability-off")] {
            let cfg = base(SystemConfig::dr_strange(2))
                .with_buffer_entries(1)
                .with_burst_events(burst);
            assert_modes_identical(cfg, wl, label);
        }
    }

    #[test]
    fn dirty_readiness_off_is_bit_identical() {
        // Dirty-tracked readiness is a pure memoization of the per-entry
        // timing scan: disabling it (alone, or together with burst
        // events) must not change a single statistic.
        let wl = &eval_pairs(5120)[0];
        let run = |dirty: bool, burst: bool| {
            let cfg = base(SystemConfig::dr_strange(2))
                .with_dirty_readiness(dirty)
                .with_burst_events(burst);
            System::new(cfg, wl.traces(), Box::new(DRange::new(3)))
                .expect("valid configuration")
                .run()
        };
        let on = run(true, true);
        for (dirty, burst) in [(false, true), (true, false), (false, false)] {
            let off = run(dirty, burst);
            let label = format!("dirty={dirty} burst={burst}");
            assert_eq!(on.cpu_cycles, off.cpu_cycles, "{label}: cpu cycles");
            assert_eq!(on.stats, off.stats, "{label}: engine stats");
            assert_eq!(on.channels, off.channels, "{label}: channel stats");
            for (a, b) in on.cores.iter().zip(&off.cores) {
                assert_eq!(
                    a.finish.map(|s| (s.at_cycle, s.stats)),
                    b.finish.map(|s| (s.at_cycle, s.stats)),
                    "{label}: finish snapshots"
                );
                assert_eq!(a.end_stats, b.end_stats, "{label}: end stats");
            }
        }
    }

    #[test]
    fn four_core_mixed_workload() {
        let wl = &dr_strange::workloads::four_core_groups(1, 7)[0].1[0];
        assert_modes_identical(base(SystemConfig::dr_strange(4)), wl, "four-core");
    }

    #[test]
    fn idle_dominated_low_utilization_pair() {
        // The fig05/fig15 regime where skipping dominates (the benchmark's
        // ≥3x speedup case): low-intensity app + 640 Mb/s RNG benchmark.
        // Here the vast majority of cycles must actually be skipped.
        let app = dr_strange::workloads::app_by_name("povray").expect("catalog");
        let wl = Workload::pair(&app, 640);
        for (cfg, label) in [
            (SystemConfig::dr_strange(2), "idle-dominated"),
            (SystemConfig::rng_oblivious(2), "idle-oblivious"),
            (SystemConfig::greedy_idle(2), "idle-greedy"),
        ] {
            let skipped = assert_modes_identical(base(cfg), &wl, label);
            assert!(
                skipped > 0.5,
                "{label}: skipped fraction {skipped:.2} too low for an idle-dominated run"
            );
        }
    }

    /// Service layer active: every arrival process must stay bit-identical
    /// across simulation modes (arrivals are CPU-cycle events the
    /// fast-forward next-event contract now has to honor).
    mod service {
        use super::*;
        use dr_strange::core::{ServiceConfig, SystemConfig};
        use dr_strange::workloads::{
            bursty_service, closed_loop_service, poisson_service,
        };

        fn with_requests(mut cfg: ServiceConfig, log: bool) -> ServiceConfig {
            cfg.capture_values = log;
            cfg
        }

        #[test]
        fn closed_loop_clients_with_trace_cores() {
            let wl = &eval_pairs(5120)[10];
            let cfg = base(SystemConfig::dr_strange(2))
                .with_service(with_requests(closed_loop_service(3, 32, 400, 60), true));
            assert_modes_identical(cfg, wl, "svc-closed-loop");
        }

        #[test]
        fn poisson_clients_with_trace_cores() {
            let wl = &eval_pairs(5120)[4];
            let cfg = base(SystemConfig::dr_strange(2))
                .with_service(with_requests(poisson_service(4, 16, 2048, 80, 11), true));
            assert_modes_identical(cfg, wl, "svc-poisson");
        }

        #[test]
        fn bursty_clients_with_oblivious_baseline() {
            // Service requests ride the read queues under Oblivious
            // routing; bursts exercise the demand-batching path.
            let wl = &eval_pairs(5120)[7];
            let cfg = base(SystemConfig::rng_oblivious(2))
                .with_service(with_requests(bursty_service(2, 24, 8, 9000, 64), true));
            assert_modes_identical(cfg, wl, "svc-bursty-oblivious");
        }

        #[test]
        fn pure_service_system_without_cores() {
            // Zero trace cores: the run is driven entirely by client
            // arrivals and ends when the service targets are met.
            let cfg = SystemConfig::dr_strange(0)
                .with_service(with_requests(poisson_service(4, 32, 1024, 120, 3), true));
            let run = |mode: SimMode| {
                let mut sys = System::new(
                    cfg.clone().with_sim_mode(mode),
                    Vec::new(),
                    Box::new(DRange::new(3)),
                )
                .expect("valid configuration");
                let res = sys.run();
                (res, sys.skipped_cycles())
            };
            let (reference, ref_skipped) = run(SimMode::Reference);
            let (fast, fast_skipped) = run(SimMode::FastForward);
            assert_eq!(ref_skipped, 0);
            assert!(fast_skipped > 0, "pure-service run must fast-forward");
            assert!(!fast.hit_cycle_limit, "targets must be met");
            assert_eq!(fast.cpu_cycles, reference.cpu_cycles);
            assert_eq!(fast.stats, reference.stats);
            assert_eq!(fast.channels, reference.channels);
            assert_eq!(fast.service, reference.service);
            let svc = fast.service.expect("service stats");
            assert_eq!(svc.requests_completed, 4 * 120);
            assert_eq!(svc.latency_log.len(), 4 * 120);
        }

        #[test]
        fn trace_replay_clients_with_trace_cores() {
            // TraceReplay arrivals are absolute-cycle events: the
            // fast-forward next-event contract must honor them exactly
            // like the generated processes. The schedule mixes bursts
            // (duplicate cycles) with long gaps so both the live path and
            // dead-span skipping cross arrivals.
            let wl = &eval_pairs(5120)[10];
            let schedules: Vec<Vec<u64>> = (0..3)
                .map(|c| {
                    (0..40)
                        .map(|i| (i / 2) * 7_000 + c * 911)
                        .collect()
                })
                .collect();
            let clients = schedules
                .into_iter()
                .map(|s| dr_strange::core::ClientSpec::trace_replay(24, s))
                .collect();
            let cfg = base(SystemConfig::dr_strange(2)).with_service(ServiceConfig {
                clients,
                capture_values: true,
                ..ServiceConfig::default()
            });
            assert_modes_identical(cfg, wl, "svc-trace-replay");
        }

        #[test]
        fn aging_policy_is_bit_identical_across_modes() {
            // Priority aging is a closed-form function of (now, arrival),
            // so it must not perturb the next-event contract even under a
            // mixed-QoS overload.
            use dr_strange::core::FairnessPolicy;
            use dr_strange::workloads::assign_qos;
            let wl = &eval_pairs(5120)[10];
            let service = assign_qos(
                poisson_service(4, 32, 2560, 60, 13),
                &[
                    dr_strange::core::QosClass::High,
                    dr_strange::core::QosClass::Normal,
                    dr_strange::core::QosClass::Normal,
                    dr_strange::core::QosClass::Low,
                ],
            );
            let cfg = base(SystemConfig::dr_strange(2))
                .with_fairness(FairnessPolicy::aging())
                .with_service(with_requests(service, true));
            assert_modes_identical(cfg, wl, "svc-aging");
        }

        #[test]
        fn weighted_fair_policy_is_bit_identical_across_modes() {
            // DRR deficits mutate only at live decision cycles; fast
            // forward must replay the exact same schedule.
            use dr_strange::core::FairnessPolicy;
            use dr_strange::workloads::contended_qos_service;
            let wl = &eval_pairs(5120)[4];
            let cfg = base(SystemConfig::dr_strange(2))
                .with_fairness(FairnessPolicy::weighted_fair())
                .with_service(with_requests(contended_qos_service(64, 30), true));
            assert_modes_identical(cfg, wl, "svc-wfq");
        }

        #[test]
        fn k_or_timeout_coalescing_is_bit_identical_across_modes() {
            // The widened arbitration window holds the RNG queue for a
            // k-deep burst or a timeout; both checks run on live cycles
            // the fast-forward path never skips.
            use dr_strange::core::CoalesceWindow;
            let wl = &eval_pairs(5120)[7];
            let cfg = base(SystemConfig::dr_strange(2))
                .with_buffer_entries(1)
                .with_coalesce_window(CoalesceWindow::KOrTimeout { k: 6, timeout: 300 })
                .with_service(with_requests(bursty_service(2, 24, 8, 9000, 48), true));
            assert_modes_identical(cfg, wl, "svc-k-or-timeout");
        }

        #[test]
        fn burst_events_under_k_or_timeout_coalescing() {
            // The widened window batches k-deep RNG bursts whose
            // completions all land on one due cycle — the burst-as-one-
            // event path at its densest. Bit-identity must hold with the
            // feature on and off.
            use dr_strange::core::CoalesceWindow;
            let wl = &eval_pairs(5120)[7];
            for (burst, label) in [(true, "burst-kot-on"), (false, "burst-kot-off")] {
                let cfg = base(SystemConfig::dr_strange(2))
                    .with_buffer_entries(1)
                    .with_coalesce_window(CoalesceWindow::KOrTimeout { k: 6, timeout: 300 })
                    .with_burst_events(burst)
                    .with_service(with_requests(bursty_service(2, 24, 8, 9000, 48), true));
                assert_modes_identical(cfg, wl, label);
            }
        }

        #[test]
        fn service_with_probe_cache_off_is_bit_identical() {
            // The engine fill-probe memoization must be a pure
            // memoization under service traffic too.
            let cfg = base(SystemConfig::dr_strange(2))
                .with_service(with_requests(closed_loop_service(2, 32, 300, 50), true));
            let wl = &eval_pairs(5120)[0];
            let run = |probe_cache: bool| {
                let cfg = cfg.clone().with_probe_cache(probe_cache);
                System::new(cfg, wl.traces(), Box::new(DRange::new(3)))
                    .expect("valid configuration")
                    .run()
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(on.cpu_cycles, off.cpu_cycles);
            assert_eq!(on.stats, off.stats);
            assert_eq!(on.channels, off.channels);
            assert_eq!(on.service, off.service);
        }
    }

    #[test]
    fn probe_cache_off_is_bit_identical() {
        // The O(1) next-event probe cache is a pure memoization: disabling
        // it must not change a single statistic, on a busy workload (many
        // invalidations) and on an idle-dominated one (long-lived entries).
        let busy = &eval_pairs(5120)[0];
        let idle = Workload::pair(
            &dr_strange::workloads::app_by_name("povray").expect("catalog"),
            640,
        );
        for (wl, label) in [(busy, "busy"), (&idle, "idle")] {
            let run = |probe_cache: bool| {
                let cfg = base(SystemConfig::dr_strange(2)).with_probe_cache(probe_cache);
                System::new(cfg, wl.traces(), Box::new(DRange::new(3)))
                    .expect("valid configuration")
                    .run()
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(on.cpu_cycles, off.cpu_cycles, "{label}: cpu cycles");
            assert_eq!(on.stats, off.stats, "{label}: engine stats");
            assert_eq!(on.channels, off.channels, "{label}: channel stats");
            for (a, b) in on.cores.iter().zip(&off.cores) {
                assert_eq!(
                    a.finish.map(|s| (s.at_cycle, s.stats)),
                    b.finish.map(|s| (s.at_cycle, s.stats)),
                    "{label}: finish snapshots"
                );
                assert_eq!(a.end_stats, b.end_stats, "{label}: end stats");
            }
        }
    }
}
