//! Full-stack determinism: identical configurations and seeds must yield
//! bit-identical results, which the experiment harness relies on (alone
//! baselines are cached and reused across figures).

use dr_strange::core::{RunResult, System, SystemConfig};
use dr_strange::energy::{system_energy, Ddr3PowerParams};
use dr_strange::trng::{DRange, QuacTrng};
use dr_strange::workloads::{eval_pairs, Workload};

fn run_workload(wl: &Workload, seed: u64) -> RunResult {
    let cfg = SystemConfig::dr_strange(wl.cores()).with_instruction_target(30_000);
    System::new(cfg, wl.traces(), Box::new(DRange::new(seed)))
        .expect("valid configuration")
        .run()
}

#[test]
fn identical_runs_are_bit_identical() {
    let wl = &eval_pairs(5120)[10];
    let a = run_workload(wl, 7);
    let b = run_workload(wl, 7);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
    assert_eq!(a.stats.rng_requests, b.stats.rng_requests);
    assert_eq!(a.stats.fill_batches, b.stats.fill_batches);
    assert_eq!(a.stats.buffer_serve.hits(), b.stats.buffer_serve.hits());
    assert_eq!(a.stats.predictor, b.stats.predictor);
    for (ca, cb) in a.cores.iter().zip(&b.cores) {
        assert_eq!(ca.finish.map(|f| f.at_cycle), cb.finish.map(|f| f.at_cycle));
        assert_eq!(ca.end_stats, cb.end_stats);
    }
    for (ca, cb) in a.channels.iter().zip(&b.channels) {
        assert_eq!(ca.acts, cb.acts);
        assert_eq!(ca.reads, cb.reads);
        assert_eq!(ca.idle_periods, cb.idle_periods);
    }
    // Downstream energy is therefore identical too.
    let t = dr_strange::dram::TimingParams::ddr3_1600();
    let p = Ddr3PowerParams::default();
    assert_eq!(
        system_energy(&a.channels, &t, &p).total_nj(),
        system_energy(&b.channels, &t, &p).total_nj()
    );
}

#[test]
fn different_trng_seed_changes_values_not_timing() {
    // The entropy seed changes which bits are produced, but generation
    // timing is seed-independent, so performance results are unchanged.
    let wl = &eval_pairs(5120)[4];
    let a = run_workload(wl, 1);
    let b = run_workload(wl, 2);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
    assert_eq!(a.exec_cycles(0), b.exec_cycles(0));
    assert_eq!(a.exec_cycles(1), b.exec_cycles(1));
}

#[test]
fn mechanism_changes_timing_deterministically() {
    let wl = &eval_pairs(5120)[4];
    let cfg = || SystemConfig::dr_strange(2).with_instruction_target(30_000);
    let quac_a = System::new(cfg(), wl.traces(), Box::new(QuacTrng::new(1)))
        .expect("valid configuration")
        .run();
    let quac_b = System::new(cfg(), wl.traces(), Box::new(QuacTrng::new(1)))
        .expect("valid configuration")
        .run();
    assert_eq!(quac_a.cpu_cycles, quac_b.cpu_cycles);
    // And QUAC differs from D-RaNGe (different round shapes).
    let drange = run_workload(wl, 1);
    assert_ne!(quac_a.stats.fill_batches, drange.stats.fill_batches);
}

#[test]
fn workload_traces_are_reproducible() {
    use dr_strange::cpu::TraceSource;
    let wl = &eval_pairs(5120)[0];
    let mut t1 = wl.traces();
    let mut t2 = wl.traces();
    for (a, b) in t1.iter_mut().zip(t2.iter_mut()) {
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
