//! End-to-end integration: catalog workloads through the full system, with
//! the paper's headline claims checked directionally at small scale.

use dr_strange::core::{RunResult, System, SystemConfig};
use dr_strange::metrics::{unfairness_index, MemSlowdown};
use dr_strange::trng::DRange;
use dr_strange::workloads::{app_by_name, AppRef, Workload};

const TARGET: u64 = 60_000;

fn run(config: SystemConfig, workload: &Workload) -> RunResult {
    let mut sys = System::new(
        config.with_instruction_target(TARGET),
        workload.traces(),
        Box::new(DRange::new(1)),
    )
    .expect("valid configuration");
    let res = sys.run();
    assert!(!res.hit_cycle_limit, "{} hit the cycle limit", workload.name);
    res
}

fn alone(app: &AppRef) -> RunResult {
    run(
        SystemConfig::rng_oblivious(1),
        &Workload {
            name: format!("{}-alone", app.label()),
            apps: vec![app.clone()],
        },
    )
}

/// The paper's central claim (Figures 6 and 9), checked as an average over
/// a sample of catalog applications: DR-STRaNGe improves non-RNG
/// performance, RNG performance, and fairness over the RNG-oblivious
/// baseline.
#[test]
fn dr_strange_beats_baseline_on_average() {
    let apps = ["ycsb1", "sphinx3", "soplex", "lbm", "hmmer", "gcc"];
    let mut base_sums = (0.0, 0.0, 0.0);
    let mut ds_sums = (0.0, 0.0, 0.0);
    for name in apps {
        let wl = Workload::pair(&app_by_name(name).expect("in catalog"), 5120);
        let alone_app = alone(&wl.apps[0]);
        let alone_rng = alone(&wl.apps[1]);
        for (sums, cfg) in [
            (&mut base_sums, SystemConfig::rng_oblivious(2)),
            (&mut ds_sums, SystemConfig::dr_strange(2)),
        ] {
            let res = run(cfg, &wl);
            sums.0 += res.exec_cycles(0) as f64 / alone_app.exec_cycles(0) as f64;
            sums.1 += res.exec_cycles(1) as f64 / alone_rng.exec_cycles(0) as f64;
            sums.2 += unfairness_index(&[
                MemSlowdown::from_mcpi(res.cores[0].mcpi(), alone_app.cores[0].mcpi()),
                MemSlowdown::from_mcpi(res.cores[1].mcpi(), alone_rng.cores[0].mcpi()),
            ])
            .expect("two apps");
        }
    }
    assert!(
        ds_sums.0 < base_sums.0,
        "non-RNG slowdown: DR-STRaNGe {ds_sums:?} vs baseline {base_sums:?}"
    );
    assert!(
        ds_sums.1 < base_sums.1,
        "RNG slowdown: DR-STRaNGe {ds_sums:?} vs baseline {base_sums:?}"
    );
    assert!(
        ds_sums.2 < base_sums.2,
        "unfairness: DR-STRaNGe {ds_sums:?} vs baseline {base_sums:?}"
    );
}

/// Figure 1's motivation trend: baseline interference grows with the
/// required RNG throughput.
#[test]
fn baseline_interference_grows_with_rng_intensity() {
    let app = app_by_name("milc").expect("in catalog");
    let alone_app = alone(&AppRef::Named("milc"));
    let mut prev = 0.0;
    for mbps in [640u32, 2560, 10_240] {
        let wl = Workload::pair(&app, mbps);
        let res = run(SystemConfig::rng_oblivious(2), &wl);
        let sd = res.exec_cycles(0) as f64 / alone_app.exec_cycles(0) as f64;
        assert!(
            sd > prev,
            "slowdown must grow with intensity: {sd} after {prev} at {mbps}"
        );
        prev = sd;
    }
}

/// The buffer hides TRNG latency: with DR-STRaNGe, the RNG application can
/// run *faster* than it does alone on the RNG-oblivious baseline
/// (Figure 6 bottom: 20.6% average improvement over alone).
#[test]
fn buffer_beats_alone_execution() {
    let wl = Workload::pair(&app_by_name("povray").expect("in catalog"), 5120);
    let alone_rng = alone(&wl.apps[1]);
    let res = run(SystemConfig::dr_strange(2), &wl);
    let sd = res.exec_cycles(1) as f64 / alone_rng.exec_cycles(0) as f64;
    assert!(sd < 1.0, "RNG app should beat its alone baseline: {sd}");
    assert!(res.stats.buffer_serve_rate() > 0.5);
}

/// Four-core workloads run to completion under every design preset.
#[test]
fn four_core_mixes_run_under_all_designs() {
    let groups = dr_strange::workloads::four_core_groups(1, 5);
    let wl = groups[1].1[0].clone(); // one LLHS workload
    for cfg in [
        SystemConfig::rng_oblivious(4),
        SystemConfig::greedy_idle(4),
        SystemConfig::dr_strange(4),
        SystemConfig::dr_strange_rl(4),
        SystemConfig::dr_strange_no_predictor(4),
    ] {
        let res = run(cfg, &wl);
        assert_eq!(res.cores.len(), 4);
        assert!(res.stats.rng_requests > 0);
    }
}

/// System invariants that must hold for any run.
#[test]
fn run_invariants() {
    let wl = Workload::pair(&app_by_name("gems").expect("in catalog"), 2560);
    let res = run(SystemConfig::dr_strange(2), &wl);
    let s = &res.stats;
    assert_eq!(
        s.rng_served_from_buffer + s.rng_served_on_demand,
        s.rng_completions,
        "every completion is either a buffer hit or on-demand"
    );
    assert!(s.rng_completions <= s.rng_requests);
    assert!((0.0..=1.0).contains(&s.buffer_serve_rate()));
    assert!((0.0..=1.0).contains(&s.predictor_accuracy()));
    let total = res.total_channel_stats();
    assert!(total.cycles > 0);
    assert!(total.idle_cycles <= total.cycles);
    // Row-buffer outcome accounting is complete.
    assert_eq!(
        total.row_hits + total.row_misses + total.row_conflicts,
        total.reads + total.writes
    );
}
