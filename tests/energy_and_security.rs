//! Cross-crate integration: the Section 8.9 energy claim and the Section 6
//! security properties, exercised through the full simulated system.

use dr_strange::core::{RngDevice, RunResult, ServeKind, System, SystemConfig};
use dr_strange::dram::TimingParams;
use dr_strange::energy::{area_mm2, system_energy, Ddr3PowerParams, StructureBits};
use dr_strange::trng::{runs_test, DRange};
use dr_strange::workloads::{app_by_name, Workload};

const TARGET: u64 = 60_000;

fn run(config: SystemConfig, workload: &Workload) -> RunResult {
    System::new(
        config.with_instruction_target(TARGET),
        workload.traces(),
        Box::new(DRange::new(1)),
    )
    .expect("valid configuration")
    .run()
}

/// Section 8.9: DR-STRaNGe reduces memory energy versus the RNG-oblivious
/// baseline by finishing the same work in fewer cycles.
#[test]
fn dr_strange_reduces_energy() {
    let timing = TimingParams::ddr3_1600();
    let power = Ddr3PowerParams::default();
    let mut base_total = 0.0;
    let mut ds_total = 0.0;
    let mut base_cycles = 0u64;
    let mut ds_cycles = 0u64;
    for name in ["sphinx3", "soplex", "ycsb1"] {
        let wl = Workload::pair(&app_by_name(name).expect("in catalog"), 5120);
        let base = run(SystemConfig::rng_oblivious(2), &wl);
        let ds = run(SystemConfig::dr_strange(2), &wl);
        base_total += system_energy(&base.channels, &timing, &power).total_nj();
        ds_total += system_energy(&ds.channels, &timing, &power).total_nj();
        base_cycles += base.mem_cycles;
        ds_cycles += ds.mem_cycles;
    }
    assert!(
        ds_cycles < base_cycles,
        "total memory cycles must shrink: {ds_cycles} vs {base_cycles}"
    );
    assert!(
        ds_total < base_total,
        "energy must shrink: {ds_total} vs {base_total}"
    );
}

/// Section 8.9: the area of the DR-STRaNGe structures is negligible, and
/// the RL variant costs more than the simple one.
#[test]
fn area_claims() {
    let simple = area_mm2(StructureBits::paper_simple());
    let rl = area_mm2(StructureBits::paper_rl());
    assert!(simple < 0.003);
    assert!(rl > simple);
    assert!(rl < 0.02);
}

/// Section 6: random numbers served through the full system are unique —
/// the buffer discards each word after serving it.
#[test]
fn full_system_serves_unique_values() {
    let wl = Workload {
        name: "rng-only".into(),
        apps: vec![dr_strange::workloads::AppRef::Rng(5120)],
    };
    let mut sys = System::new(
        SystemConfig::dr_strange(1).with_instruction_target(300_000),
        wl.traces(),
        Box::new(DRange::new(99)),
    )
    .expect("valid configuration");
    sys.set_value_log(true);
    sys.run();
    let log = sys.mem().value_log();
    assert!(log.len() > 50, "need a meaningful sample: {}", log.len());
    let mut sorted = log.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), log.len(), "no 64-bit value served twice");
}

/// Section 6 timing side channel: the interface exposes exactly two
/// observable service classes (buffer vs generated), and the buffer state
/// determines which one a caller sees.
#[test]
fn timing_side_channel_classes() {
    let mut dev = RngDevice::new(Box::new(DRange::new(5)), 16);
    let mut buf = [0u8; 8];
    assert_eq!(dev.getrandom(&mut buf), ServeKind::Generated);
    dev.background_fill(8);
    assert_eq!(dev.getrandom(&mut buf), ServeKind::Buffer);
    // Draining the buffer flips the observable class back.
    assert_eq!(dev.getrandom(&mut buf), ServeKind::Generated);
}

/// Random values served by the full system look random (runs structure).
#[test]
fn served_values_pass_runs_test() {
    let wl = Workload {
        name: "rng-only".into(),
        apps: vec![dr_strange::workloads::AppRef::Rng(10_240)],
    };
    let mut sys = System::new(
        SystemConfig::dr_strange(1).with_instruction_target(400_000),
        wl.traces(),
        Box::new(DRange::new(3)),
    )
    .expect("valid configuration");
    sys.set_value_log(true);
    sys.run();
    let log = sys.mem().value_log();
    assert!(log.len() >= 256);
    let z = runs_test(log).statistic;
    assert!(z < 6.0, "served stream has no gross run structure: z = {z}");
}
