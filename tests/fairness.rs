//! Fairness-policy behavior: the starvation regression suite (Low-tenant
//! tail latency under saturating High-priority load is bounded by
//! `Aging`/`WeightedFair` but unbounded-trending under `Strict`) and the
//! Strict-oracle property test (the refactored pick function reproduces
//! the pre-refactor priority path bit for bit).

use dr_strange::core::sched::strict_pick;
use dr_strange::core::{
    ClientSpec, FairnessPolicy, FaultPlan, QosClass, RunResult, ServiceConfig, System,
    SystemConfig, WatchdogConfig,
};
use dr_strange::trng::DRange;
use dr_strange::workloads::contended_qos_service;
use proptest::prelude::*;
use std::cmp::Reverse;

/// Runs the shared contended scenario (two saturating High-priority
/// closed-loop aggressors + Normal + Low tenants) under `policy`.
fn contended(policy: FairnessPolicy, requests: u64) -> RunResult {
    let cfg = SystemConfig::dr_strange(0)
        .with_fairness(policy)
        .with_service(contended_qos_service(64, requests));
    System::new(cfg, Vec::new(), Box::new(DRange::new(17)))
        .expect("valid configuration")
        .run()
}

/// An open-loop overload: one saturating High-priority Poisson tenant
/// whose backlog grows for the whole run, plus one Low closed-loop
/// tenant. Under `Strict` the Low tenant's worst-case latency tracks the
/// growing backlog; under `WeightedFair` its guaranteed share bounds it.
fn open_loop_overload(policy: FairnessPolicy, requests: u64) -> RunResult {
    let cfg = SystemConfig::dr_strange(0)
        .with_fairness(policy)
        .with_service(ServiceConfig {
            clients: vec![
                ClientSpec::poisson(32, 1200, requests, 5).with_qos(QosClass::High),
                ClientSpec::closed_loop(64, 5_000, requests / 4).with_qos(QosClass::Low),
            ],
            ..ServiceConfig::default()
        });
    System::new(cfg, Vec::new(), Box::new(DRange::new(5)))
        .expect("valid configuration")
        .run()
}

fn tenant_pct(res: &RunResult, client: usize, q: f64) -> u64 {
    res.service
        .as_ref()
        .expect("service stats")
        .client_latency_percentile(client, q)
        .expect("tenant completions")
}

#[test]
fn strict_starves_low_while_aging_and_wfq_bound_it() {
    // The acceptance numbers of the fairness-policy layer, asserted on
    // the shared contended scenario: the fair policies cut the Low
    // tenant's p99 by well over 5x while the High aggressor's p99
    // regresses by at most 2x. (Measured: Strict low p99 ~1.94M vs
    // ~83k under Aging and ~38k under WeightedFair; High p99 26.6k ->
    // 40k under either fair policy.)
    let strict = contended(FairnessPolicy::Strict, 50);
    let aging = contended(FairnessPolicy::aging(), 50);
    let wfq = contended(FairnessPolicy::weighted_fair(), 50);
    for res in [&strict, &aging, &wfq] {
        assert!(!res.hit_cycle_limit, "contended runs must drain");
    }
    let (strict_low, strict_high) = (tenant_pct(&strict, 3, 0.99), tenant_pct(&strict, 0, 0.99));
    let (aging_low, aging_high) = (tenant_pct(&aging, 3, 0.99), tenant_pct(&aging, 0, 0.99));
    let (wfq_low, wfq_high) = (tenant_pct(&wfq, 3, 0.99), tenant_pct(&wfq, 0, 0.99));
    assert!(
        strict_low >= 10 * strict_high,
        "Strict must starve the Low tenant: low p99 {strict_low} vs high p99 {strict_high}"
    );
    assert!(
        aging_low * 5 <= strict_low,
        "Aging must cut the Low-tenant p99 >= 5x: {aging_low} vs {strict_low}"
    );
    assert!(
        wfq_low * 5 <= strict_low,
        "WeightedFair must cut the Low-tenant p99 >= 5x: {wfq_low} vs {strict_low}"
    );
    assert!(
        aging_high <= 2 * strict_high,
        "Aging may cost the High tenant at most 2x: {aging_high} vs {strict_high}"
    );
    assert!(
        wfq_high <= 2 * strict_high,
        "WeightedFair may cost the High tenant at most 2x: {wfq_high} vs {strict_high}"
    );
}

#[test]
fn fair_policies_stay_bounded_as_the_run_doubles() {
    // Doubling the run length leaves the fair policies' Low-tenant p99
    // essentially flat (bounded starvation), while Strict keeps it an
    // order of magnitude above them at either scale.
    for policy in [FairnessPolicy::aging(), FairnessPolicy::weighted_fair()] {
        let short = contended(policy, 50);
        let long = contended(policy, 100);
        let (s, l) = (tenant_pct(&short, 3, 0.99), tenant_pct(&long, 3, 0.99));
        assert!(
            l * 2 <= 3 * s,
            "{policy:?}: doubled run must not inflate Low p99 ({s} -> {l})"
        );
        let strict_long = contended(FairnessPolicy::Strict, 100);
        assert!(tenant_pct(&strict_long, 3, 0.99) >= 5 * l);
    }
}

#[test]
fn strict_worst_case_trends_with_the_backlog_but_wfq_does_not() {
    // Open-loop overload: the High tenant's backlog grows for the whole
    // run. Strict's Low-tenant worst case tracks it (unbounded-trending:
    // it keeps growing as the horizon doubles); WeightedFair's
    // guaranteed share keeps the worst case flat; Aging sits in between
    // (it degenerates to age-ordered FIFO, so it follows the queueing
    // delay but stays well below Strict).
    let horizons = [200u64, 400, 800];
    let max_at = |policy, requests| {
        let res = open_loop_overload(policy, requests);
        assert!(!res.hit_cycle_limit);
        tenant_pct(&res, 1, 1.0)
    };
    let strict: Vec<u64> = horizons.iter().map(|&r| max_at(FairnessPolicy::Strict, r)).collect();
    let wfq: Vec<u64> = horizons
        .iter()
        .map(|&r| max_at(FairnessPolicy::weighted_fair(), r))
        .collect();
    assert!(
        strict[1] * 2 >= strict[0] * 3 && strict[2] * 2 >= strict[1] * 3,
        "Strict worst case must keep growing with the horizon: {strict:?}"
    );
    assert!(
        wfq[2] * 5 <= wfq[0] * 6,
        "WeightedFair worst case must stay flat across horizons: {wfq:?}"
    );
    assert!(wfq[2] * 5 <= strict[2], "WFQ bounds what Strict lets grow");
    let aging_longest = max_at(FairnessPolicy::aging(), horizons[2]);
    assert!(
        aging_longest * 2 <= strict[2],
        "Aging must stay well below Strict's trending worst case: {aging_longest} vs {}",
        strict[2]
    );
}

#[test]
fn fair_policies_stay_bounded_with_a_channel_quarantined() {
    // The fairness × watchdog cross product: a stuck channel loses a
    // quarter of generation capacity mid-run, yet the fair policies must
    // keep the Low tenant's p99 bounded — well below Strict under the
    // same quarantine, and within a small factor of the healthy-system
    // fair baseline (capacity loss may slow everyone, but must not
    // reintroduce starvation).
    let quarantined = |policy: FairnessPolicy| {
        let plan = FaultPlan::new().channel_derate(500, 0, 0, 1, 10_000_000);
        let cfg = SystemConfig::dr_strange(0)
            .with_fairness(policy)
            .with_watchdog(WatchdogConfig {
                probe_period: 4_000,
                ..WatchdogConfig::standard()
            })
            .with_fault_plan(plan)
            .with_service(contended_qos_service(64, 50));
        System::new(cfg, Vec::new(), Box::new(DRange::new(17)))
            .expect("valid configuration")
            .run()
    };
    let strict = quarantined(FairnessPolicy::Strict);
    let aging = quarantined(FairnessPolicy::aging());
    let wfq = quarantined(FairnessPolicy::weighted_fair());
    for res in [&strict, &aging, &wfq] {
        assert!(!res.hit_cycle_limit, "quarantined runs must still drain");
        assert!(
            res.stats.quarantines >= 1,
            "the stuck channel must be quarantined: {:?}",
            res.stats
        );
    }
    let strict_low = tenant_pct(&strict, 3, 0.99);
    let (aging_low, wfq_low) = (tenant_pct(&aging, 3, 0.99), tenant_pct(&wfq, 3, 0.99));
    assert!(
        aging_low * 5 <= strict_low,
        "Aging must keep the quarantined Low p99 >= 5x below Strict: {aging_low} vs {strict_low}"
    );
    assert!(
        wfq_low * 5 <= strict_low,
        "WeightedFair must keep the quarantined Low p99 >= 5x below Strict: {wfq_low} vs {strict_low}"
    );
    // Versus the healthy fair baseline the quarantine costs capacity,
    // not fairness: the Low tenant's p99 stays within a small factor.
    let healthy_wfq = contended(FairnessPolicy::weighted_fair(), 50);
    let healthy_low = tenant_pct(&healthy_wfq, 3, 0.99);
    assert!(
        wfq_low <= 4 * healthy_low,
        "quarantine must not starve the Low tenant under WFQ: {wfq_low} vs healthy {healthy_low}"
    );
}

proptest! {
    /// `strict_pick` is bit-identical to the pre-refactor priority path:
    /// `max_by_key((priority, Reverse((arrival, id))))` over the queued
    /// entries, and plain FIFO (index 0) for a uniformly prioritized,
    /// arrival-ordered queue.
    #[test]
    fn strict_pick_matches_the_pre_refactor_path(
        entries in proptest::collection::vec((0u8..4, 0u64..1_000), 1..24),
    ) {
        // Assign unique ids in queue order; arrivals become a running
        // maximum for the FIFO half of the check.
        let queue: Vec<(u8, u64, u64)> = entries
            .iter()
            .enumerate()
            .map(|(i, &(p, a))| (p, a, i as u64 + 1))
            .collect();
        let oracle = queue
            .iter()
            .enumerate()
            .max_by_key(|&(_, &(p, a, id))| (p, Reverse((a, id))))
            .map(|(i, _)| i);
        prop_assert_eq!(strict_pick(queue.iter().copied()), oracle);

        let mut running = 0;
        let fifo: Vec<(u8, u64, u64)> = queue
            .iter()
            .map(|&(_, a, id)| {
                running = running.max(a);
                (1, running, id)
            })
            .collect();
        prop_assert_eq!(
            strict_pick(fifo.iter().copied()),
            Some(0),
            "uniform priorities over an arrival-ordered queue are FIFO"
        );
    }
}
