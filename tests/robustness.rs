//! Robustness: deterministic fault injection with graceful degradation,
//! and the overload-protection satellites (adaptive aging quantum,
//! weighted-fair per-episode batch caps). Every faulted or overloaded
//! scenario must uphold the house invariant — `FastForward` bit-identical
//! to the per-cycle `Reference` — because fault events fire at exact
//! scheduled cycles in both modes.

use dr_strange::core::{
    ClientSpec, FairnessPolicy, FaultPlan, RunResult, ServiceConfig, SimMode, System, SystemConfig,
};
use dr_strange::trng::DRange;
use dr_strange::workloads::{
    contended_qos_service, eval_pairs, flash_crowd_with_victim, slow_drain_service, Workload,
};

fn base(cfg: SystemConfig) -> SystemConfig {
    cfg.with_instruction_target(25_000)
}

/// Runs `cfg` in both simulation modes on `wl` and asserts bit-identical
/// results including the served random values; returns the fast-mode run
/// for follow-on degradation assertions.
fn assert_modes_identical(cfg: SystemConfig, wl: &Workload, label: &str) -> RunResult {
    let run = |mode: SimMode| {
        let cfg = cfg.clone().with_sim_mode(mode);
        let mut sys = System::new(cfg, wl.traces(), Box::new(DRange::new(3)))
            .expect("valid configuration");
        sys.set_value_log(true);
        let res = sys.run();
        let values = sys.mem().value_log().to_vec();
        let skipped = sys.skipped_cycles();
        (res, values, skipped)
    };
    let (reference, ref_values, ref_skipped) = run(SimMode::Reference);
    let (fast, fast_values, fast_skipped) = run(SimMode::FastForward);
    assert_eq!(ref_skipped, 0, "{label}: reference mode must not skip");
    assert!(fast_skipped > 0, "{label}: fast-forward must skip something");
    assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "{label}: cpu cycles");
    assert_eq!(fast.stats, reference.stats, "{label}: engine stats");
    assert_eq!(fast.channels, reference.channels, "{label}: channel stats");
    for (i, (f, r)) in fast.cores.iter().zip(&reference.cores).enumerate() {
        assert_eq!(
            f.finish.map(|s| (s.at_cycle, s.stats)),
            r.finish.map(|s| (s.at_cycle, s.stats)),
            "{label}: core {i} finish snapshot"
        );
        assert_eq!(f.end_stats, r.end_stats, "{label}: core {i} end stats");
    }
    assert_eq!(fast_values, ref_values, "{label}: served random values");
    assert_eq!(fast.service, reference.service, "{label}: service stats");
    fast
}

/// The pure-service variant: no trace cores, the run drains when the
/// client targets are met (which itself proves recovery — a fault that
/// wedged generation would leave the run pinned at the cycle limit).
fn assert_service_modes_identical(cfg: SystemConfig, label: &str) -> RunResult {
    let run = |mode: SimMode| {
        let mut sys = System::new(
            cfg.clone().with_sim_mode(mode),
            Vec::new(),
            Box::new(DRange::new(3)),
        )
        .expect("valid configuration");
        let res = sys.run();
        (res, sys.skipped_cycles())
    };
    let (reference, ref_skipped) = run(SimMode::Reference);
    let (fast, fast_skipped) = run(SimMode::FastForward);
    assert_eq!(ref_skipped, 0, "{label}: reference mode must not skip");
    assert!(fast_skipped > 0, "{label}: fast-forward must skip something");
    assert!(!fast.hit_cycle_limit, "{label}: targets must be met");
    assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "{label}: cpu cycles");
    assert_eq!(fast.stats, reference.stats, "{label}: engine stats");
    assert_eq!(fast.channels, reference.channels, "{label}: channel stats");
    assert_eq!(fast.service, reference.service, "{label}: service stats");
    fast
}

fn tenant_pct(res: &RunResult, client: usize, q: f64) -> u64 {
    res.service
        .as_ref()
        .expect("service stats")
        .client_latency_percentile(client, q)
        .expect("tenant completions")
}

mod faults {
    use super::*;

    #[test]
    fn channel_outage_fails_over_and_stays_bit_identical() {
        // An outage on channel 0 spanning most of the run: demand
        // generation must fail over to the three surviving channels
        // (degraded episodes) and predictive filling must skip the
        // channel, with both modes replaying the same schedule. The
        // single-word buffer forces requests onto the demand path so
        // the failover actually exercises.
        let wl = &eval_pairs(5120)[10];
        let plan = FaultPlan::new().outage(500, 0, 10_000);
        let res = assert_modes_identical(
            base(SystemConfig::dr_strange(2))
                .with_buffer_entries(1)
                .with_fault_plan(plan),
            wl,
            "outage",
        );
        assert_eq!(res.stats.faults_injected, 1, "the outage fired");
        assert!(
            res.stats.degraded_generations > 0,
            "episodes during the outage ran on 3 of 4 channels: {:?}",
            res.stats
        );
    }

    #[test]
    fn stall_storm_blockades_and_recovers() {
        let wl = &eval_pairs(5120)[4];
        let plan = FaultPlan::new().stall_storm(3_000, 1, 20_000);
        let res = assert_modes_identical(
            base(SystemConfig::dr_strange(2)).with_fault_plan(plan),
            wl,
            "stall-storm",
        );
        assert_eq!(res.stats.faults_injected, 1, "the storm fired");
    }

    #[test]
    fn entropy_derate_slows_generation_without_changing_timing_rules() {
        // Quartering the usable bits per round makes each generation
        // episode pay ~4x the rounds while it lasts; the decision logic
        // (and hence the mode equivalence) is untouched.
        let wl = &eval_pairs(5120)[10];
        let plan = FaultPlan::new().derate(500, 1, 4, 10_000);
        let cfg = base(SystemConfig::dr_strange(2)).with_buffer_entries(1);
        let res = assert_modes_identical(cfg.clone().with_fault_plan(plan), wl, "derate");
        assert_eq!(res.stats.faults_injected, 1);
        assert!(res.stats.degraded_generations > 0, "derated episodes count");
        // The same workload without the fault finishes no later and
        // fills no more batches per word (sanity: derating only hurts).
        let healthy = assert_modes_identical(cfg, wl, "derate-baseline");
        assert_eq!(healthy.stats.faults_injected, 0);
        assert_eq!(healthy.stats.degraded_generations, 0);
    }

    #[test]
    fn buffer_corruption_discards_words_oldest_first() {
        let wl = &eval_pairs(5120)[10];
        // Give the predictive filler time to stock the buffer, then
        // flag most of it corrupt.
        let plan = FaultPlan::new().corruption(2_500, 12);
        let res = assert_modes_identical(
            base(SystemConfig::dr_strange(2)).with_fault_plan(plan),
            wl,
            "corruption",
        );
        assert_eq!(res.stats.faults_injected, 1);
        assert!(
            res.stats.corrupted_words_discarded > 0,
            "the integrity check discarded stored words: {:?}",
            res.stats
        );
    }

    #[test]
    fn combined_plan_under_service_load_recovers_and_stays_bit_identical() {
        // All four fault kinds against a pure-service system under the
        // shared contended scenario: the run completing (targets met)
        // is the graceful-degradation acceptance — requests keep being
        // served through outage, storm, derating, and corruption.
        let plan = FaultPlan::new()
            .outage(2_000, 0, 30_000)
            .stall_storm(10_000, 2, 15_000)
            .derate(20_000, 1, 2, 40_000)
            .corruption(25_000, 8)
            .corruption(50_000, 8);
        let cfg = SystemConfig::dr_strange(0)
            .with_fault_plan(plan)
            .with_service(contended_qos_service(64, 40));
        let res = assert_service_modes_identical(cfg, "combined-faults");
        assert_eq!(res.stats.faults_injected, 5, "every event fired");
        assert!(res.stats.degraded_generations > 0);
        // (Under this load the buffer runs dry, so the corruption events
        // find little to discard — the dedicated corruption test covers
        // the discard accounting against a stocked buffer.)
        let svc = res.service.as_ref().expect("service stats");
        assert_eq!(svc.requests_completed, 2 * 160 + 2 * 40);
    }

    #[test]
    fn fault_under_flash_crowd_is_bit_identical() {
        // The overload × fault cross product: a flash crowd slams the
        // queue while a channel drops out mid-storm. This is the worst
        // case for the next-event contract (dense arrivals + fault
        // expiries) and must still replay bit for bit.
        let plan = FaultPlan::new().outage(5_000, 1, 25_000).derate(8_000, 1, 2, 20_000);
        let cfg = SystemConfig::dr_strange(0)
            .with_fairness(FairnessPolicy::weighted_fair())
            .with_fault_plan(plan)
            .with_service(flash_crowd_with_victim(3, 32, 24, 5_000, 30, 2_000));
        let res = assert_service_modes_identical(cfg, "fault-under-load");
        assert_eq!(res.stats.faults_injected, 2);
    }
}

mod watchdog {
    use super::*;
    use dr_strange::core::WatchdogConfig;

    /// The standard watchdog with a probe cadence short enough that
    /// quarantine → probe → re-admission fits inside a test-sized run.
    fn fast_watchdog() -> WatchdogConfig {
        WatchdogConfig {
            probe_period: 4_000,
            ..WatchdogConfig::standard()
        }
    }

    #[test]
    fn stuck_channel_is_quarantined_and_stays_bit_identical() {
        // A quality derate (num=0: every bit stuck at one) on channel 0
        // for essentially the whole run. The watchdog must detect the
        // biased words, quarantine the channel, and keep probing it —
        // all at exact simulated cycles, so both modes replay the same
        // trip and the same probe schedule.
        let plan = FaultPlan::new().channel_derate(500, 0, 0, 1, 10_000_000);
        let cfg = SystemConfig::dr_strange(0)
            .with_watchdog(fast_watchdog())
            .with_fault_plan(plan)
            .with_service(contended_qos_service(64, 40));
        let res = assert_service_modes_identical(cfg, "watchdog-trip");
        assert_eq!(res.stats.faults_injected, 1, "the derate fired");
        assert!(res.stats.windows_tested > 0, "live windows were tested");
        assert!(
            res.stats.quarantines >= 1,
            "the stuck channel must trip quarantine: {:?}",
            res.stats
        );
        assert!(
            res.stats.probe_rounds > 0,
            "quarantined channels receive probe rounds: {:?}",
            res.stats
        );
        assert!(
            res.stats.tainted_words_discarded > 0,
            "probe words are tested and discarded: {:?}",
            res.stats
        );
        // Probe draws are never buffered or served: every probe round
        // discards exactly its probe_words draw.
        assert_eq!(
            res.stats.tainted_words_discarded,
            res.stats.probe_rounds * u64::from(fast_watchdog().probe_words),
            "probe accounting identity"
        );
    }

    #[test]
    fn fill_served_load_still_trips_the_watchdog() {
        // Arrivals slow enough that predictive fill keeps the buffer
        // full and every request is served from it — no demand
        // generation at all. Fill rounds deliver sub-64-bit chunks, and
        // the watchdog's bit accumulator must still assemble them into
        // test windows and quarantine the stuck channel (the regression
        // here: word-only sampling left fill-only operation unmonitored).
        let plan = FaultPlan::new().channel_derate(500, 0, 0, 1, 10_000_000);
        let cfg = SystemConfig::dr_strange(0)
            .with_watchdog(fast_watchdog())
            .with_fault_plan(plan)
            .with_service(ServiceConfig {
                clients: vec![ClientSpec::closed_loop(64, 30_000, 40)],
                ..ServiceConfig::default()
            });
        let res = assert_service_modes_identical(cfg, "watchdog-fill-only");
        assert_eq!(
            res.stats.demand_generations, 0,
            "the scenario must be served from the buffer alone: {:?}",
            res.stats
        );
        assert!(res.stats.rng_served_from_buffer > 0, "{:?}", res.stats);
        assert!(
            res.stats.quarantines >= 1,
            "fill-chunk sampling must still catch the stuck channel: {:?}",
            res.stats
        );
    }

    #[test]
    fn recovered_channel_is_probed_back_to_health() {
        // The derate ends mid-run: probes start passing once the bias
        // lifts, and the configured pass streak re-admits the channel.
        let plan = FaultPlan::new().channel_derate(500, 0, 0, 1, 60_000);
        let cfg = SystemConfig::dr_strange(0)
            .with_watchdog(fast_watchdog())
            .with_fault_plan(plan)
            .with_service(contended_qos_service(64, 60));
        let res = assert_service_modes_identical(cfg, "watchdog-readmit");
        assert!(res.stats.quarantines >= 1, "tripped: {:?}", res.stats);
        assert!(
            res.stats.readmissions >= 1,
            "the recovered channel must be re-admitted: {:?}",
            res.stats
        );
    }

    #[test]
    fn disabled_watchdog_serves_biased_words_silently() {
        // The counterfactual: the same stuck channel with the watchdog
        // off. Nothing is sampled, nothing trips — the silent failure
        // the watchdog exists to catch — and the value-only fault still
        // replays bit for bit.
        let plan = FaultPlan::new().channel_derate(500, 0, 0, 1, 10_000_000);
        let cfg = SystemConfig::dr_strange(0)
            .with_fault_plan(plan)
            .with_service(contended_qos_service(64, 40));
        let res = assert_service_modes_identical(cfg, "watchdog-off");
        assert_eq!(res.stats.windows_tested, 0);
        assert_eq!(res.stats.quarantines, 0);
        assert_eq!(res.stats.tainted_words_discarded, 0);
    }

    #[test]
    fn healthy_channels_pass_windows_without_exclusion() {
        // No fault: windows are tested continuously but the D-RaNGe
        // stream passes them, so no channel is ever excluded.
        let cfg = SystemConfig::dr_strange(0)
            .with_watchdog(fast_watchdog())
            .with_service(contended_qos_service(64, 40));
        let res = assert_service_modes_identical(cfg, "watchdog-healthy");
        assert!(res.stats.windows_tested > 0);
        assert_eq!(res.stats.quarantines, 0, "healthy entropy never trips");
        assert_eq!(res.stats.probe_rounds, 0);
    }

    #[test]
    fn watchdog_under_trace_cores_is_bit_identical() {
        // Trace cores + single-word buffer force the demand path while
        // the watchdog samples and quarantines: the worst case for the
        // next-event contract (probe deadlines interleaved with demand
        // episodes) must still replay bit for bit.
        let wl = &eval_pairs(5120)[10];
        let plan = FaultPlan::new().channel_derate(500, 0, 0, 1, 10_000_000);
        // Trace runs draw far fewer words than service runs (this one
        // serves 16 requests): shrink the window so the sampler still
        // reaches boundaries.
        let wd = WatchdogConfig {
            window_words: 2,
            trip_failures: 1,
            probe_words: 8,
            ..fast_watchdog()
        };
        let cfg = base(SystemConfig::dr_strange(2))
            .with_buffer_entries(1)
            .with_watchdog(wd)
            .with_fault_plan(plan);
        let res = assert_modes_identical(cfg, wl, "watchdog-traces");
        assert!(res.stats.windows_tested > 0, "{:?}", res.stats);
    }
}

mod satellites {
    use super::*;

    /// Runs the shared contended scenario under `policy`.
    fn contended(policy: FairnessPolicy, requests: u64) -> RunResult {
        let cfg = SystemConfig::dr_strange(0)
            .with_fairness(policy)
            .with_service(contended_qos_service(64, requests));
        System::new(cfg, Vec::new(), Box::new(DRange::new(17)))
            .expect("valid configuration")
            .run()
    }

    #[test]
    fn adaptive_aging_is_bit_identical_across_modes() {
        // The adaptive quantum is derived from the engine's running
        // episode-cost estimate, which mutates only at live decision
        // cycles — so fast forward replays the same promotions.
        let wl = &eval_pairs(5120)[10];
        let cfg = base(SystemConfig::dr_strange(2))
            .with_fairness(FairnessPolicy::adaptive_aging())
            .with_service(contended_qos_service(64, 30));
        assert_modes_identical(cfg, wl, "adaptive-aging");
    }

    #[test]
    fn adaptive_aging_bounds_the_low_tenant_like_static_aging() {
        // The adaptive quantum must deliver the static policy's headline
        // numbers with zero tuning: Low-tenant p99 at least 5x below
        // Strict, High-tenant p99 within 2x of Strict.
        let strict = contended(FairnessPolicy::Strict, 50);
        let adaptive = contended(FairnessPolicy::adaptive_aging(), 50);
        let (strict_low, strict_high) =
            (tenant_pct(&strict, 3, 0.99), tenant_pct(&strict, 0, 0.99));
        let (ada_low, ada_high) =
            (tenant_pct(&adaptive, 3, 0.99), tenant_pct(&adaptive, 0, 0.99));
        assert!(
            ada_low * 5 <= strict_low,
            "adaptive aging must cut the Low p99 >= 5x: {ada_low} vs {strict_low}"
        );
        assert!(
            ada_high <= 2 * strict_high,
            "adaptive aging may cost the High tenant at most 2x: {ada_high} vs {strict_high}"
        );
        // And it stays flat as the horizon doubles (bounded starvation).
        let long = contended(FairnessPolicy::adaptive_aging(), 100);
        let (s, l) = (tenant_pct(&adaptive, 3, 0.99), tenant_pct(&long, 3, 0.99));
        assert!(
            l * 2 <= 3 * s,
            "doubled run must not inflate the adaptive Low p99 ({s} -> {l})"
        );
    }

    #[test]
    fn wfq_episode_cap_defers_slow_drain_batches() {
        // Slow-drain tenants (huge word counts per request) monopolize
        // generation episodes; the per-episode batch cap re-queues their
        // excess so other tenants' words ride the same episode.
        let cfg = SystemConfig::dr_strange(0)
            .with_fairness(FairnessPolicy::weighted_fair())
            .with_service(slow_drain_service(3, 48, 2_000, 12));
        let res = assert_service_modes_identical(cfg, "slow-drain-wfq");
        assert!(
            res.stats.demand_batch_deferrals > 0,
            "48-word requests must exceed the per-episode cap: {:?}",
            res.stats
        );
        let svc = res.service.as_ref().expect("service stats");
        assert_eq!(svc.requests_completed, 3 * 12, "deferred words still serve");
    }

    #[test]
    fn episode_cap_only_engages_under_weighted_fair() {
        // Strict has no per-tenant share to enforce: the same slow-drain
        // population must not record deferrals.
        let cfg = SystemConfig::dr_strange(0)
            .with_service(slow_drain_service(3, 48, 2_000, 12));
        let res = assert_service_modes_identical(cfg, "slow-drain-strict");
        assert_eq!(res.stats.demand_batch_deferrals, 0);
    }
}
