//! End-to-end behavior of the cycle-accurate `getrandom()` service layer:
//! latency ordering, throughput saturation, multi-client interaction with
//! trace cores, and the Section 6 no-duplication property under
//! concurrent clients (property-tested over random client populations).

use dr_strange::core::{
    ClientSpec, QosClass, ServeKind, ServiceConfig, SimMode, System, SystemConfig,
};
use dr_strange::trng::DRange;
use dr_strange::workloads::{
    assign_qos, closed_loop_service, emit_arrival_trace, eval_pairs, parse_arrival_trace,
    poisson_service, trace_replay_service,
};
use proptest::prelude::*;

fn service_system(cfg: SystemConfig) -> System {
    System::new(cfg, Vec::new(), Box::new(DRange::new(9))).expect("valid configuration")
}

#[test]
fn low_offered_load_is_served_from_buffer_at_low_latency() {
    // 4 clients at a comfortable aggregate load against a 16-entry
    // buffer: most requests hit the fast path, and the p50 latency is the
    // buffer-serve latency (10 DRAM cycles = 50 CPU cycles).
    let cfg = SystemConfig::dr_strange(0).with_service(poisson_service(4, 8, 256, 80, 1));
    let res = service_system(cfg).run();
    assert!(!res.hit_cycle_limit);
    let svc = res.service.expect("service stats");
    assert_eq!(svc.requests_completed, 4 * 80);
    assert!(
        svc.buffer_hit_rate() > 0.5,
        "low load should mostly hit the buffer: {}",
        svc.buffer_hit_rate()
    );
    let p50 = svc.latency_percentile(0.5).expect("completions");
    assert!(p50 <= 60, "buffered p50 should be ~50 CPU cycles, got {p50}");
}

#[test]
fn overload_saturates_served_throughput() {
    // Offered load far beyond D-RaNGe's 4-channel sustained rate
    // (~620 Mb/s): completions still drain (closed queueing through the
    // RNG queue), but measured served throughput saturates below offered,
    // and latency grows with queueing.
    let low = SystemConfig::dr_strange(0).with_service(poisson_service(4, 32, 512, 60, 2));
    let high = SystemConfig::dr_strange(0).with_service(poisson_service(4, 32, 8192, 60, 2));
    let low_res = service_system(low).run();
    let high_res = service_system(high).run();
    assert!(!low_res.hit_cycle_limit && !high_res.hit_cycle_limit);
    let served_mbps = |res: &dr_strange::core::RunResult| {
        let svc = res.service.as_ref().expect("service stats");
        svc.bytes_served as f64 * 8.0 / (res.cpu_cycles as f64 / 4e9) / 1e6
    };
    let (low_served, high_served) = (served_mbps(&low_res), served_mbps(&high_res));
    assert!(
        high_served < 8192.0 * 0.5,
        "served must saturate well below offered: {high_served} Mb/s"
    );
    let p99_low = low_res.service.unwrap().latency_percentile(0.99).unwrap();
    let p99_high = high_res.service.unwrap().latency_percentile(0.99).unwrap();
    assert!(
        p99_high > p99_low,
        "overload must inflate tail latency: {p99_high} vs {p99_low}"
    );
    assert!(low_served > 0.0);
}

#[test]
fn bigger_buffer_does_not_hurt_latency() {
    let run = |entries: usize| {
        let cfg = SystemConfig::dr_strange(0)
            .with_buffer_entries(entries)
            .with_service(poisson_service(2, 16, 512, 60, 5));
        let res = service_system(cfg).run();
        res.service.unwrap().latency_percentile(0.5).unwrap()
    };
    let small = run(2);
    let large = run(32);
    assert!(
        large <= small,
        "32-entry p50 {large} must not exceed 2-entry p50 {small}"
    );
}

#[test]
fn service_clients_share_the_engine_with_trace_cores() {
    // Trace cores and service clients drive the same RNG machinery: the
    // engine's request counter sees both, and core applications slow down
    // under service-driven contention.
    let wl = &eval_pairs(5120)[10];
    let base_cfg = SystemConfig::dr_strange(2).with_instruction_target(25_000);
    let alone = System::new(base_cfg.clone(), wl.traces(), Box::new(DRange::new(9)))
        .expect("valid configuration")
        .run();
    let cfg = base_cfg.with_service(closed_loop_service(4, 64, 0, 200));
    let shared = System::new(cfg, wl.traces(), Box::new(DRange::new(9)))
        .expect("valid configuration")
        .run();
    let svc = shared.service.as_ref().expect("service stats");
    assert!(svc.requests_completed > 0);
    assert!(
        shared.stats.rng_requests > alone.stats.rng_requests,
        "service words must flow through the engine's RNG path"
    );
    assert!(
        shared.exec_cycles(0) >= alone.exec_cycles(0),
        "aggressive service traffic must not speed up a trace core"
    );
}

#[test]
fn manual_submission_through_system_api() {
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        clients: vec![ClientSpec::manual(8)],
        ..ServiceConfig::default()
    });
    let mut sys = service_system(cfg);
    let seq = sys.service_submit(0, 24);
    let served = sys.run_service_request(0, seq, 10_000_000);
    assert_eq!(served.words.len(), 3, "24 bytes = 3 words");
    assert!(served.latency_cycles > 0);
    // Warm buffer (prefilled by default): the fast path served it.
    assert_eq!(served.kind, ServeKind::Buffer);
    // Run-loop termination is not blocked by manual clients.
    let res = sys.run();
    assert!(!res.hit_cycle_limit);
}

#[test]
fn offered_counts_match_configured_targets() {
    let clients = 3;
    let requests = 40;
    let cfg = SystemConfig::dr_strange(0)
        .with_service(poisson_service(clients, 16, 1024, requests, 7));
    let res = service_system(cfg).run();
    let svc = res.service.expect("service stats");
    assert_eq!(svc.requests_offered, clients as u64 * requests);
    assert_eq!(svc.requests_completed, svc.requests_offered);
    assert_eq!(svc.bytes_served, svc.requests_completed * 16);
    assert_eq!(svc.words_issued, svc.requests_completed * 2);
    assert_eq!(
        svc.words_from_buffer + svc.words_generated,
        svc.words_issued
    );
}

#[test]
fn high_qos_tenant_gets_lower_tail_latency_under_contention() {
    // Four identical Poisson tenants past the mechanism's saturation
    // point, differentiated only by QoS class: the High tenant's words
    // take RNG-queue slots and buffer words first (Section 5.2 applied to
    // the service path), so its p99 must sit below the Low tenant's.
    let service = assign_qos(
        poisson_service(4, 32, 2560, 60, 13),
        &[QosClass::High, QosClass::Normal, QosClass::Normal, QosClass::Low],
    );
    let cfg = SystemConfig::dr_strange(0).with_service(service);
    let res = service_system(cfg).run();
    assert!(!res.hit_cycle_limit);
    let svc = res.service.expect("service stats");
    assert_eq!(svc.latency_by_client.len(), 4);
    let p99_high = svc.client_latency_percentile(0, 0.99).expect("completions");
    let p99_low = svc.client_latency_percentile(3, 0.99).expect("completions");
    assert!(
        p99_high < p99_low,
        "High tenant p99 {p99_high} must beat Low tenant p99 {p99_low}"
    );
    // And the uniform-priority run is unaffected by the QoS machinery:
    // same population, all Normal, behaves identically to the pre-QoS
    // service (sanity anchor for the ordering changes).
    let uniform = SystemConfig::dr_strange(0)
        .with_service(poisson_service(4, 32, 2560, 60, 13));
    let ures = service_system(uniform).run();
    let usvc = ures.service.expect("service stats");
    assert_eq!(usvc.requests_completed, svc.requests_completed);
}

#[test]
fn recorded_poisson_run_replays_to_identical_stats() {
    // Record the arrival cycles of an open-loop Poisson run, round-trip
    // them through the text trace format, replay them as TraceReplay
    // clients: the replay must reproduce the original ServiceStats (and
    // the whole simulation) bit for bit.
    let mut service = poisson_service(3, 24, 1024, 50, 21);
    service.record_arrivals = true;
    let cfg = SystemConfig::dr_strange(0).with_service(service);
    let mut sys = service_system(cfg);
    let original = sys.run();
    assert!(!original.hit_cycle_limit);
    let recorded: Vec<Vec<u64>> = (0..3)
        .map(|ci| {
            let log = sys.service().expect("service").arrival_log(ci);
            assert_eq!(log.len(), 50, "every arrival is recorded");
            // Round-trip through the on-disk format.
            parse_arrival_trace(&emit_arrival_trace(log)).expect("well-formed trace")
        })
        .collect();
    let replay_cfg = SystemConfig::dr_strange(0)
        .with_service(trace_replay_service(recorded, 24));
    let replay = service_system(replay_cfg).run();
    assert_eq!(replay.cpu_cycles, original.cpu_cycles);
    assert_eq!(replay.stats, original.stats, "engine stats must replay");
    assert_eq!(
        replay.service, original.service,
        "ServiceStats (incl. latency log + per-client split) must replay"
    );
}

#[test]
fn dynamic_sessions_share_the_system_with_configured_clients() {
    // open_session on a running system: the new tenant is served through
    // the same machinery and its latencies land in the per-client split.
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        clients: vec![ClientSpec::manual(8)],
        ..ServiceConfig::default()
    });
    let mut sys = service_system(cfg);
    let seq = sys.service_submit(0, 8);
    sys.run_service_request(0, seq, 10_000_000);
    let late = sys.open_session(ClientSpec::manual(32).with_qos(QosClass::High));
    assert_eq!(late, 1);
    assert_eq!(sys.service().expect("service").client_priority(late), 2);
    let seq = sys.service_submit(late, 32);
    let served = sys.run_service_request(late, seq, 10_000_000);
    assert_eq!(served.words.len(), 4);
    let stats = sys.service().expect("service").stats().clone();
    assert_eq!(stats.latency_by_client.len(), 2);
    assert_eq!(stats.latency_by_client[1].len(), 1);
    // Closed sessions reject further traffic but keep their history.
    sys.close_session(late);
    assert_eq!(stats.requests_completed, 2);
}

proptest! {
    /// Section 6: across any mix of concurrent clients and arrival
    /// processes, no 64-bit word is ever served twice (true randoms
    /// collide with negligible probability, so equality means a
    /// duplication bug).
    #[test]
    fn served_words_are_never_duplicated_across_clients(
        seed in 1u64..1000,
        n_closed in 0usize..3,
        n_poisson in 0usize..3,
        n_bursty in 0usize..2,
        bytes in 1usize..40,
        requests in 3u64..12,
    ) {
        let mut clients = Vec::new();
        for i in 0..n_closed {
            clients.push(ClientSpec::closed_loop(bytes, 50 * i as u64, requests));
        }
        for i in 0..n_poisson {
            clients.push(ClientSpec::poisson(bytes, 400, requests, seed ^ i as u64));
        }
        for _ in 0..n_bursty {
            clients.push(ClientSpec::bursty(bytes, 4, 2_000, requests));
        }
        if clients.is_empty() {
            clients.push(ClientSpec::closed_loop(bytes, 0, requests));
        }
        let cfg = SystemConfig::dr_strange(0)
            .with_service(ServiceConfig {
                clients,
                capture_values: true,
                ..ServiceConfig::default()
            })
            .with_sim_mode(SimMode::FastForward);
        let mut sys = System::new(cfg, Vec::new(), Box::new(DRange::new(seed)))
            .expect("valid configuration");
        let res = sys.run();
        prop_assert!(!res.hit_cycle_limit, "service targets must drain");
        let words = sys.service().expect("service").captured_words().to_vec();
        let expected_words: usize = res
            .service
            .as_ref()
            .map(|s| s.words_issued as usize)
            .unwrap_or(0);
        prop_assert_eq!(words.len(), expected_words);
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), words.len(), "a word was served twice");
    }
}
